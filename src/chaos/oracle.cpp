#include "chaos/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <limits>

#include "core/tasks.hpp"
#include "flow/opt.hpp"
#include "guard/budget.hpp"
#include "guard/error.hpp"
#include "ir/qasm.hpp"
#include "stab/reference.hpp"
#include "stab/tableau.hpp"
#include "transpile/target.hpp"
#include "transpile/transpiler.hpp"

namespace qdt::chaos {

namespace {

/// Classify an exception caught at an oracle boundary.
Outcome classify_exception(const char* what_out, std::string& detail) {
  try {
    throw;
  } catch (const Error& e) {
    detail = std::string(e.code_name()) + ": " + e.what();
    return Outcome::TypedError;
  } catch (const std::exception& e) {
    detail = std::string("escaped ") + what_out + ": " + e.what();
    return Outcome::Escape;
  } catch (...) {
    detail = std::string("escaped ") + what_out + ": non-standard exception";
    return Outcome::Escape;
  }
}

std::vector<Complex> simulate_state(const ir::Circuit& c,
                                    core::SimBackend backend) {
  core::SimulateOptions opts;
  opts.shots = 0;
  opts.want_state = true;
  auto res = core::simulate(c, backend, opts);
  if (!res.state.has_value()) {
    throw Error::internal("oracle: backend produced no state");
  }
  return std::move(*res.state);
}

/// Marginal P(qubit q = 1) of a dense state (qubit q = index bit q).
double marginal_one(const std::vector<Complex>& state, std::size_t q) {
  double p = 0.0;
  for (std::size_t i = 0; i < state.size(); ++i) {
    if ((i >> q) & 1U) {
      p += std::norm(state[i]);
    }
  }
  return p;
}

/// A verification method applied to a pair expected to be equivalent.
CheckResult expect_equivalent(const std::string& check, const ir::Circuit& a,
                              const ir::Circuit& b, core::EcMethod method,
                              double deadline_seconds) {
  CheckResult r;
  r.check = check;
  try {
    guard::BudgetScope scope({.deadline_seconds = deadline_seconds});
    const auto v = core::verify(a, b, method);
    if (!v.conclusive) {
      // Inconclusive is an honest answer (ZX stalls on non-Clifford
      // miters), not a finding.
      r.outcome = Outcome::Agree;
      r.detail = "inconclusive: " + v.detail;
    } else if (!v.equivalent) {
      r.outcome = Outcome::Mismatch;
      r.detail = "refuted a known equivalence: " + v.detail;
    } else {
      r.detail = v.detail;
    }
  } catch (...) {
    r.outcome = classify_exception(check.c_str(), r.detail);
  }
  return r;
}

}  // namespace

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::Agree:
      return "agree";
    case Outcome::Mismatch:
      return "mismatch";
    case Outcome::TypedError:
      return "typed-error";
    case Outcome::Escape:
      return "escape";
  }
  return "?";
}

Outcome worse(Outcome a, Outcome b) {
  const auto rank = [](Outcome o) {
    switch (o) {
      case Outcome::Agree:
        return 0;
      case Outcome::TypedError:
        return 1;
      case Outcome::Mismatch:
        return 2;
      case Outcome::Escape:
        return 3;
    }
    return 3;
  };
  return rank(a) >= rank(b) ? a : b;
}

std::vector<StateAdapter> default_state_adapters() {
  return {
      {"array",
       [](const ir::Circuit& c) {
         return simulate_state(c, core::SimBackend::Array);
       }},
      {"decision-diagram",
       [](const ir::Circuit& c) {
         return simulate_state(c, core::SimBackend::DecisionDiagram);
       }},
      {"tensor-network",
       [](const ir::Circuit& c) {
         return simulate_state(c, core::SimBackend::TensorNetwork);
       }},
      {"mps",
       [](const ir::Circuit& c) {
         return simulate_state(c, core::SimBackend::Mps);
       }},
  };
}

StateAdapter planted_adapter(const std::string& bug) {
  using ir::GateKind;
  using ir::Operation;
  if (bug == "tflip") {
    return {"planted:tflip", [](const ir::Circuit& c) {
              ir::Circuit evil(c.num_qubits(), c.name());
              for (const auto& op : c.ops()) {
                if (op.kind() == GateKind::T) {
                  evil.append(Operation{GateKind::Tdg, op.targets(),
                                        op.controls(), op.params()});
                } else {
                  evil.append(op);
                }
              }
              return simulate_state(evil, core::SimBackend::Array);
            }};
  }
  if (bug == "cxdrop") {
    return {"planted:cxdrop", [](const ir::Circuit& c) {
              ir::Circuit evil(c.num_qubits(), c.name());
              std::ptrdiff_t last_2q = -1;
              for (std::size_t i = 0; i < c.size(); ++i) {
                if (c[i].is_unitary() && c[i].num_qubits() == 2) {
                  last_2q = static_cast<std::ptrdiff_t>(i);
                }
              }
              for (std::size_t i = 0; i < c.size(); ++i) {
                if (static_cast<std::ptrdiff_t>(i) != last_2q) {
                  evil.append(c[i]);
                }
              }
              return simulate_state(evil, core::SimBackend::Array);
            }};
  }
  if (bug == "phasedrift") {
    return {"planted:phasedrift", [](const ir::Circuit& c) {
              ir::Circuit evil(c.num_qubits(), c.name());
              for (const auto& op : c.ops()) {
                evil.append(op);
                if (op.kind() == GateKind::T && op.controls().empty()) {
                  evil.p(Phase{1, 512}, op.targets()[0]);
                }
              }
              return simulate_state(evil, core::SimBackend::Array);
            }};
  }
  throw Error::bad_input("planted_adapter: unknown bug \"" + bug + "\"");
}

double state_distance_up_to_phase(const std::vector<Complex>& a,
                                  const std::vector<Complex>& b) {
  if (a.size() != b.size()) {
    return std::numeric_limits<double>::infinity();
  }
  // Align by the phase at a's largest amplitude. For the zero vector any
  // alignment works.
  std::size_t anchor = 0;
  double best = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::norm(a[i]) > best) {
      best = std::norm(a[i]);
      anchor = i;
    }
  }
  Complex phase{1.0, 0.0};
  if (best > 0.0 && std::abs(b[anchor]) > 0.0) {
    phase = (a[anchor] / std::abs(a[anchor])) /
            (b[anchor] / std::abs(b[anchor]));
  }
  double dist = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dist = std::max(dist, std::abs(a[i] - phase * b[i]));
  }
  return dist;
}

OracleReport run_oracle(const ir::Circuit& circuit,
                        const OracleOptions& options) {
  OracleReport report;
  const ir::Circuit unitary = circuit.unitary_part();
  const std::size_t n = unitary.num_qubits();

  const auto record = [&report](CheckResult r) {
    report.outcome = worse(report.outcome, r.outcome);
    if (r.outcome != Outcome::Agree && report.detail.empty()) {
      report.detail = r.check + ": " + r.detail;
    }
    report.checks.push_back(std::move(r));
  };

  // -- Pairwise dense-state diff ---------------------------------------------
  if (n <= options.max_state_qubits) {
    const std::vector<StateAdapter> adapters =
        options.adapters.empty() ? default_state_adapters()
                                 : options.adapters;
    std::string reference_name;
    std::vector<Complex> reference;
    for (const auto& adapter : adapters) {
      CheckResult r;
      r.check = "state:" + adapter.name;
      std::vector<Complex> state;
      bool ok = false;
      try {
        guard::BudgetScope scope(
            {.deadline_seconds = options.check_deadline_seconds});
        state = adapter.state(unitary);
        ok = true;
      } catch (...) {
        r.outcome = classify_exception(adapter.name.c_str(), r.detail);
      }
      if (ok && reference.empty()) {
        reference = std::move(state);
        reference_name = adapter.name;
        r.detail = "reference";
      } else if (ok) {
        const double dist = state_distance_up_to_phase(reference, state);
        r.check = "state:" + reference_name + "~" + adapter.name;
        if (!(dist <= options.tolerance)) {  // catches NaN too
          r.outcome = Outcome::Mismatch;
          r.detail = "max amplitude deviation " + std::to_string(dist);
        } else {
          r.detail = "max amplitude deviation " + std::to_string(dist);
        }
      }
      record(std::move(r));
    }

    // -- Stabilizer cross-check (Clifford circuits only) ---------------------
    if (options.stabilizer_check && !reference.empty() &&
        stab::is_clifford_circuit(unitary)) {
      CheckResult r;
      r.check = "state:" + reference_name + "~stabilizer";
      try {
        guard::BudgetScope scope(
            {.deadline_seconds = options.check_deadline_seconds});
        stab::StabilizerSimulator sim(n);
        sim.run(unitary);
        double dist = 0.0;
        for (std::size_t q = 0; q < n; ++q) {
          dist = std::max(dist, std::abs(sim.tableau().prob_one(q) -
                                         marginal_one(reference, q)));
        }
        if (dist > options.tolerance) {
          r.outcome = Outcome::Mismatch;
          r.detail = "max marginal deviation " + std::to_string(dist);
        } else {
          r.detail = "marginals agree";
        }
      } catch (...) {
        r.outcome = classify_exception("stabilizer", r.detail);
      }
      record(std::move(r));
    }
  }

  // -- Packed-vs-reference stabilizer differential (any Clifford width) ------
  // Unlike the dense lanes this is polynomial on both sides, so it runs on
  // Clifford circuits far beyond max_state_qubits: the packed word-parallel
  // tableau against the element-wise reference, compared bitwise.
  if (options.stabilizer_check && options.max_stabilizer_qubits > 0 &&
      n >= 1 && n <= options.max_stabilizer_qubits && !unitary.empty() &&
      stab::is_clifford_circuit(unitary)) {
    CheckResult r;
    r.check = "stab:packed~reference";
    try {
      guard::BudgetScope scope(
          {.deadline_seconds = options.check_deadline_seconds});
      stab::StabilizerSimulator packed(n, /*seed=*/1);
      stab::ReferenceSimulator reference_sim(n, /*seed=*/1);
      packed.run(unitary);
      reference_sim.run(unitary);
      if (!stab::tableaus_equal(packed.tableau(), reference_sim.tableau())) {
        r.outcome = Outcome::Mismatch;
        r.detail = "packed tableau diverged from element-wise reference";
      } else {
        r.detail = "tableaus bitwise equal (" + std::to_string(n) +
                   " qubits)";
      }
    } catch (...) {
      r.outcome = classify_exception("stabilizer", r.detail);
    }
    record(std::move(r));
  }

  // -- Optimizer soundness: opt(c) ~ c ---------------------------------------
  if (options.opt_check && !unitary.empty()) {
    CheckResult r;
    r.check = "opt:rewrites";
    bool optimized = false;
    flow::OptResult opt;
    try {
      guard::BudgetScope scope(
          {.deadline_seconds = options.check_deadline_seconds});
      flow::OptOptions oo;
      oo.compact_wires = false;  // keep widths comparable for the diff
      opt = flow::optimize(unitary, oo);
      optimized = true;
      r.detail = std::to_string(opt.rewrites.size()) + " rewrites, " +
                 std::to_string(opt.gates_before) + " -> " +
                 std::to_string(opt.gates_after) + " gates, certified";
    } catch (const Error& e) {
      if (e.code() == ErrorCode::Internal) {
        // The certificate checker refused a rewrite the optimizer emitted.
        // That is never an acceptable refusal — it means the optimizer
        // produced an unjustified transformation.
        r.outcome = Outcome::Mismatch;
        r.detail = std::string("certificate checker rejected: ") + e.what();
      } else {
        r.outcome = Outcome::TypedError;
        r.detail = std::string(e.code_name()) + ": " + e.what();
      }
    } catch (...) {
      r.outcome = classify_exception("optimizer", r.detail);
    }
    record(std::move(r));

    if (optimized && !opt.rewrites.empty()) {
      // Dense diff from |0..0> — the semantics every rewrite (including
      // the initial-state-dependent dead-gate/phase-fold ones) promises to
      // preserve, up to the global phase the optimizer folds and reports.
      if (n <= options.max_state_qubits) {
        CheckResult s;
        s.check = "opt:state";
        try {
          guard::BudgetScope scope(
              {.deadline_seconds = options.check_deadline_seconds});
          const auto before = simulate_state(unitary, core::SimBackend::Array);
          const auto after =
              simulate_state(opt.circuit, core::SimBackend::Array);
          const double dist = state_distance_up_to_phase(before, after);
          if (!(dist <= options.tolerance)) {  // catches NaN too
            s.outcome = Outcome::Mismatch;
          }
          s.detail = "max amplitude deviation " + std::to_string(dist);
        } catch (...) {
          s.outcome = classify_exception("opt-state", s.detail);
        }
        record(std::move(s));
      }
      // When only unitary-level rewrites fired (pair cancellation and
      // rotation merging are matrix identities, not initial-state facts),
      // the stronger claim holds: full unitary equivalence via the DD
      // miter, up to global phase.
      const bool unitary_level = std::all_of(
          opt.rewrites.begin(), opt.rewrites.end(), [](const auto& rw) {
            return rw.kind == flow::Rewrite::Kind::CancelPair ||
                   rw.kind == flow::Rewrite::Kind::MergeRotation;
          });
      if (unitary_level) {
        record(expect_equivalent("opt:ec:dd", unitary, opt.circuit,
                                 core::EcMethod::DdAlternating,
                                 options.check_deadline_seconds));
      }
    }
  }

  // -- Metamorphic equivalence checks ---------------------------------------
  if (options.equivalence_checks && n >= 1 && !unitary.empty()) {
    // c . c_dagger must be the identity — through the DD miter and ZX.
    const ir::Circuit miter = unitary.composed_with(unitary.adjoint());
    const ir::Circuit identity(n, "identity");
    record(expect_equivalent("ec:dd:adjoint", miter, identity,
                             core::EcMethod::DdAlternating,
                             options.check_deadline_seconds));
    record(expect_equivalent("ec:zx:adjoint", miter, identity,
                             core::EcMethod::Zx,
                             options.check_deadline_seconds));

    // transpile(c) must realize c (after layout restoration) — the full
    // compile-then-prove loop of the paper.
    try {
      const transpile::Target target{transpile::CouplingMap::line(n),
                                     transpile::NativeGateSet::CxRzSxX,
                                     "line"};
      transpile::TranspileResult t = [&] {
        guard::BudgetScope scope(
            {.deadline_seconds = options.check_deadline_seconds});
        return transpile::transpile(unitary, target);
      }();
      const ir::Circuit original = transpile::padded_original(unitary, target);
      const ir::Circuit restored = transpile::restored_for_verification(t);
      record(expect_equivalent("ec:dd:transpile", original, restored,
                               core::EcMethod::DdAlternating,
                               options.check_deadline_seconds));
      record(expect_equivalent("ec:zx:transpile", original, restored,
                               core::EcMethod::Zx,
                               options.check_deadline_seconds));
    } catch (...) {
      CheckResult r;
      r.check = "ec:transpile";
      r.outcome = classify_exception("transpile", r.detail);
      record(std::move(r));
    }
  }

  return report;
}

CheckResult run_parser_oracle(const std::string& qasm_text) {
  CheckResult r;
  r.check = "parser";
  try {
    const ir::Circuit c = ir::parse_qasm(qasm_text);
    r.detail = "parsed " + std::to_string(c.size()) + " ops";
    // A parsed circuit must also re-serialize and re-parse (the shrinker's
    // repro emission depends on this closing).
    try {
      const ir::Circuit again = ir::parse_qasm(ir::to_qasm(c));
      if (!(again == c)) {
        r.outcome = Outcome::Mismatch;
        r.detail = "round-trip changed the circuit";
      }
    } catch (const Error& e) {
      // to_qasm may legitimately refuse (e.g. >2 controls) — typed only.
      r.outcome = Outcome::TypedError;
      r.detail = std::string(e.code_name()) + ": " + e.what();
    }
  } catch (...) {
    r.outcome = classify_exception("parser", r.detail);
  }
  return r;
}

}  // namespace qdt::chaos
