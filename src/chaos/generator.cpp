#include "chaos/generator.hpp"

#include <algorithm>
#include <utility>

#include "ir/gate.hpp"
#include "ir/library.hpp"
#include "stab/tableau.hpp"

namespace qdt::chaos {

namespace {

using ir::Circuit;
using ir::GateKind;
using ir::Operation;
using ir::Qubit;

/// Rebuild a circuit from an op list (append re-validates qubit ranges).
Circuit rebuild(std::size_t num_qubits, const std::string& name,
                const std::vector<Operation>& ops) {
  Circuit c(num_qubits, name);
  for (const auto& op : ops) {
    c.append(op);
  }
  return c;
}

/// A random single-qubit unitary op on a random qubit.
Operation random_1q(Rng& rng, std::size_t n) {
  static const GateKind kOneQubit[] = {
      GateKind::I,  GateKind::X,   GateKind::Y,  GateKind::Z,
      GateKind::H,  GateKind::S,   GateKind::Sdg, GateKind::T,
      GateKind::Tdg, GateKind::SX, GateKind::SXdg};
  const auto q = static_cast<Qubit>(rng.index(n));
  return Operation{kOneQubit[rng.index(std::size(kOneQubit))], q};
}

/// rz/rx/ry with an angle so small every backend should treat the gate as
/// (numerically) the identity — a classic accumulation-error probe.
Operation near_identity_rotation(Rng& rng, std::size_t n) {
  static const GateKind kRot[] = {GateKind::RX, GateKind::RY, GateKind::RZ,
                                  GateKind::P};
  const auto q = static_cast<Qubit>(rng.index(n));
  // 1/2^k * pi for large k: exactly representable as a rational phase, tiny
  // in radians (down to ~1e-9 * pi).
  const auto den = std::int64_t{1} << (20 + rng.index(10));
  return Operation{kRot[rng.index(std::size(kRot))], {q}, {}, {Phase{1, den}}};
}

}  // namespace

std::string mutate_circuit(Circuit& c, Rng& rng) {
  const std::size_t n = c.num_qubits();
  if (n == 0) {
    return "";
  }
  std::vector<Operation> ops(c.ops().begin(), c.ops().end());
  switch (rng.index(8)) {
    case 0: {  // Duplicate an op right after itself (X X == I, T T == S...).
      if (ops.empty()) {
        return "";
      }
      const std::size_t i = rng.index(ops.size());
      if (!ops[i].is_unitary()) {
        return "";
      }
      const Operation dup = ops[i];
      ops.insert(ops.begin() + static_cast<std::ptrdiff_t>(i), dup);
      c = rebuild(n, c.name(), ops);
      return "dup_adjacent";
    }
    case 1: {  // Near-identity rotation at a random position.
      const std::size_t i = rng.index(ops.size() + 1);
      ops.insert(ops.begin() + static_cast<std::ptrdiff_t>(i),
                 near_identity_rotation(rng, n));
      c = rebuild(n, c.name(), ops);
      return "near_identity";
    }
    case 2: {  // Barrier at a random position.
      const std::size_t i = rng.index(ops.size() + 1);
      ops.insert(ops.begin() + static_cast<std::ptrdiff_t>(i),
                 Operation{GateKind::Barrier, Qubit{0}});
      c = rebuild(n, c.name(), ops);
      return "barrier";
    }
    case 3: {  // Delete an op.
      if (ops.empty()) {
        return "";
      }
      ops.erase(ops.begin() +
                static_cast<std::ptrdiff_t>(rng.index(ops.size())));
      c = rebuild(n, c.name(), ops);
      return "delete_op";
    }
    case 4: {  // Swap two ops (changes semantics when they don't commute).
      if (ops.size() < 2) {
        return "";
      }
      const std::size_t i = rng.index(ops.size() - 1);
      std::swap(ops[i], ops[i + 1]);
      c = rebuild(n, c.name(), ops);
      return "swap_adjacent";
    }
    case 5: {  // Sandwich: insert op; op.adjoint() (a no-op pair).
      const Operation op = random_1q(rng, n);
      const std::size_t i = rng.index(ops.size() + 1);
      ops.insert(ops.begin() + static_cast<std::ptrdiff_t>(i), op.adjoint());
      ops.insert(ops.begin() + static_cast<std::ptrdiff_t>(i), op);
      c = rebuild(n, c.name(), ops);
      return "adjoint_sandwich";
    }
    case 6: {  // Promote a 1q gate to a controlled gate on a fresh control.
      if (n < 2 || ops.empty()) {
        return "";
      }
      const std::size_t i = rng.index(ops.size());
      const Operation& op = ops[i];
      if (!op.is_unitary() || op.targets().size() != 1 ||
          !op.controls().empty() || op.kind() == GateKind::I) {
        return "";
      }
      auto ctrl = static_cast<Qubit>(rng.index(n - 1));
      if (ctrl >= op.targets()[0]) {
        ++ctrl;
      }
      ops[i] = Operation{op.kind(), op.targets(), {ctrl}, op.params()};
      c = rebuild(n, c.name(), ops);
      return "promote_control";
    }
    default: {  // Random extra 1q gate.
      const std::size_t i = rng.index(ops.size() + 1);
      ops.insert(ops.begin() + static_cast<std::ptrdiff_t>(i),
                 random_1q(rng, n));
      c = rebuild(n, c.name(), ops);
      return "insert_1q";
    }
  }
}

GeneratedCase generate_case(Rng& rng, const GeneratorConfig& config) {
  GeneratedCase out;
  if (config.clifford_only) {
    // The Clifford subset of the library families — everything the
    // stabilizer differential can check at any width.
    static const char* kCliffordFamilies[] = {"bell", "ghz", "graph_state",
                                              "random_clifford"};
    out.family = kCliffordFamilies[rng.index(std::size(kCliffordFamilies))];
  } else {
    const auto& families = ir::library_families();
    out.family = families[rng.index(families.size())];
  }

  std::size_t width = config.min_qubits +
                      rng.index(config.max_qubits - config.min_qubits + 1);
  if (rng.uniform() < config.edge_width_probability) {
    width = 1;  // degenerate-width probe
    out.mutations.push_back("edge_width_1");
  }
  out.circuit = ir::make_family(out.family, width, rng.engine()());

  const std::size_t num_mutations = rng.index(config.max_mutations + 1);
  for (std::size_t m = 0; m < num_mutations; ++m) {
    // In clifford_only mode a mutation that smuggles in a T / small-angle
    // rotation is rolled back — the RNG stream still advances, so seeds
    // stay comparable across modes.
    const ir::Circuit snapshot =
        config.clifford_only ? out.circuit : ir::Circuit{};
    std::string applied = mutate_circuit(out.circuit, rng);
    if (config.clifford_only && !applied.empty() &&
        !stab::is_clifford_circuit(out.circuit)) {
      out.circuit = snapshot;
      applied.clear();
    }
    if (!applied.empty()) {
      out.mutations.push_back(std::move(applied));
    }
  }

  // Trim to the op cap (mutations only add a handful, but families vary).
  if (out.circuit.size() > config.max_ops) {
    std::vector<Operation> ops(out.circuit.ops().begin(),
                               out.circuit.ops().begin() +
                                   static_cast<std::ptrdiff_t>(config.max_ops));
    out.circuit = rebuild(out.circuit.num_qubits(), out.circuit.name(), ops);
    out.mutations.push_back("truncated");
  }

  if (rng.uniform() < config.measure_probability) {
    out.circuit.measure_all();
    out.mutations.push_back("measure_all");
  }
  return out;
}

std::string mutate_qasm_text(const std::string& qasm, Rng& rng) {
  std::string text = qasm;
  const std::size_t edits = 1 + rng.index(3);
  for (std::size_t e = 0; e < edits; ++e) {
    if (text.empty()) {
      return text;
    }
    switch (rng.index(6)) {
      case 0:  // Truncate mid-token.
        text.resize(rng.index(text.size() + 1));
        break;
      case 1: {  // Duplicate a line.
        std::vector<std::string> lines;
        std::size_t start = 0;
        while (start <= text.size()) {
          const std::size_t nl = text.find('\n', start);
          lines.push_back(text.substr(
              start, nl == std::string::npos ? std::string::npos : nl - start));
          if (nl == std::string::npos) {
            break;
          }
          start = nl + 1;
        }
        const std::size_t i = rng.index(lines.size());
        lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(i), lines[i]);
        text.clear();
        for (std::size_t l = 0; l < lines.size(); ++l) {
          text += lines[l];
          if (l + 1 < lines.size()) {
            text += '\n';
          }
        }
        break;
      }
      case 2: {  // Flip one byte to a printable character.
        const std::size_t i = rng.index(text.size());
        text[i] = static_cast<char>(' ' + rng.index(95));
        break;
      }
      case 3: {  // Splice in a hostile token.
        static const char* kTokens[] = {
            "q[999999]", "-",      "pi/0",   "1e999", ";;",
            "qreg q[0];", "creg",  "u3(",    "0x12",  "\t\t",
            "measure q ->", "cx q[0],q[0];"};
        const std::size_t i = rng.index(text.size() + 1);
        text.insert(i, kTokens[rng.index(std::size(kTokens))]);
        break;
      }
      case 4: {  // Delete a random span.
        const std::size_t i = rng.index(text.size());
        const std::size_t len = 1 + rng.index(std::min<std::size_t>(
                                        16, text.size() - i));
        text.erase(i, len);
        break;
      }
      default: {  // Duplicate a random span (digit runs, brackets...).
        const std::size_t i = rng.index(text.size());
        const std::size_t len = 1 + rng.index(std::min<std::size_t>(
                                        8, text.size() - i));
        text.insert(i, text.substr(i, len));
        break;
      }
    }
  }
  return text;
}

}  // namespace qdt::chaos
