// qdt::chaos — the differential oracle.
//
// The paper's central claim is that arrays, decision diagrams, tensor
// networks, and ZX-calculus are interchangeable lenses on the same
// semantics; this oracle enforces that claim mechanically. One circuit is
// run through every applicable backend and the results are compared up to
// global phase; on top of the state diff, metamorphic equivalence checks
// (c ~ transpile(c) and c.c_dagger ~ identity, each through both the DD
// miter and ZX rewriting) cross-validate the verification stack against
// the simulation stack.
//
// Outcome taxonomy:
//   Agree       every applicable backend produced the same answer
//   Mismatch    two backends disagree, or a checker refuted a known
//               equivalence — always a bug, always a finding
//   TypedError  a backend refused with a qdt::Error (acceptable: budgets
//               and unsupported features are part of the contract)
//   Escape      a non-qdt::Error exception crossed the API boundary —
//               always a finding, the guard layer's contract is broken
#pragma once

#include <complex>
#include <functional>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "ir/circuit.hpp"

namespace qdt::chaos {

enum class Outcome { Agree, Mismatch, TypedError, Escape };

const char* outcome_name(Outcome o);

/// Severity ordering for folding per-check outcomes into a case verdict:
/// Agree < TypedError < Mismatch < Escape.
Outcome worse(Outcome a, Outcome b);

/// A state-producing backend adapter: returns the dense statevector of a
/// unitary circuit. The default set wraps array/DD/TN/MPS; tests plant
/// deliberately buggy adapters here to prove the triage loop finds them.
struct StateAdapter {
  std::string name;
  std::function<std::vector<Complex>(const ir::Circuit&)> state;
};

/// The four exact state-producing backends (array, decision-diagram,
/// tensor-network, mps), each routed through core::simulate.
std::vector<StateAdapter> default_state_adapters();

/// A deliberately buggy adapter for exercising the triage loop end to end
/// (`qdt fuzz --plant <bug>` and the planted-bug tests): "tflip" silently
/// treats every T as Tdg (a flipped sign in a gate kernel), "cxdrop" drops
/// the last two-qubit gate, "phasedrift" adds a tiny phase error after
/// every T. Throws qdt::Error(BadInput) on unknown names.
StateAdapter planted_adapter(const std::string& bug);

struct CheckResult {
  std::string check;    // "state:array~decision-diagram", "ec:dd:adjoint"...
  Outcome outcome = Outcome::Agree;
  std::string detail;
};

struct OracleOptions {
  /// Backends whose dense states are diffed pairwise against the first
  /// adapter that succeeds. Empty: default_state_adapters().
  std::vector<StateAdapter> adapters;
  /// Amplitude tolerance for the pairwise state diff (after global-phase
  /// alignment).
  double tolerance = 1e-7;
  /// Run the metamorphic equivalence checks (DD + ZX on c~transpile(c) and
  /// c.c_dagger~identity). Skipped for width-1 trivia only when disabled.
  bool equivalence_checks = true;
  /// Compare stabilizer-tableau marginals for Clifford circuits.
  bool stabilizer_check = true;
  /// Metamorphic optimizer check: opt(c) ~ c. Runs flow::optimize (wire
  /// compaction off so widths stay comparable) and, when any rewrite
  /// fired, proves the optimized circuit equivalent to the original via
  /// the DD miter and a dense-state diff. A certificate-checker rejection
  /// (Error(Internal)) is a Mismatch finding, not a typed refusal — the
  /// optimizer must never emit an unjustified rewrite.
  bool opt_check = true;
  /// Width cap for the dense state diff (2^n amplitudes per backend).
  std::size_t max_state_qubits = 10;
  /// Width cap for the packed-vs-reference stabilizer differential on
  /// Clifford circuits. Both sides are polynomial, so this runs far past
  /// max_state_qubits — 1000+-qubit Clifford cases get a bitwise tableau
  /// comparison even when no dense backend can touch them. 0 disables.
  std::size_t max_stabilizer_qubits = 4096;
  /// Wall-clock budget per individual check (guard::BudgetScope). Fuzzing
  /// found adversarial cases where ZX rewriting stalls into a dense
  /// diagram whose tensor fallback runs for minutes — a per-check deadline
  /// turns those into typed ResourceExhausted instead. 0 = unlimited.
  double check_deadline_seconds = 2.0;
};

struct OracleReport {
  Outcome outcome = Outcome::Agree;
  /// First (most severe) finding, empty when everything agreed.
  std::string detail;
  std::vector<CheckResult> checks;

  bool is_finding() const {
    return outcome == Outcome::Mismatch || outcome == Outcome::Escape;
  }
};

/// Run every applicable backend pair and metamorphic check on `circuit`.
OracleReport run_oracle(const ir::Circuit& circuit,
                        const OracleOptions& options = {});

/// Parser oracle: feed (possibly malformed) QASM text to parse_qasm and
/// require a clean outcome — parse success (Agree) or a typed qdt::Error
/// (TypedError). Any other exception is an Escape finding.
CheckResult run_parser_oracle(const std::string& qasm_text);

/// Align `b` onto `a` by the global phase at a's largest amplitude, then
/// return the max elementwise deviation (infinity on size mismatch).
double state_distance_up_to_phase(const std::vector<Complex>& a,
                                  const std::vector<Complex>& b);

}  // namespace qdt::chaos
