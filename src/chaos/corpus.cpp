#include "chaos/corpus.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "guard/error.hpp"
#include "ir/qasm.hpp"
#include "obs/obs.hpp"

namespace qdt::chaos {

namespace {

/// Circuits the QASM writer cannot express (>2 controls) still need a
/// persisted form — fall back to the IR listing inside a comment header.
std::string serialize(const ir::Circuit& c) {
  try {
    return ir::to_qasm(c);
  } catch (const Error&) {
    std::ostringstream out;
    out << "// not expressible in OpenQASM 2.0 — IR listing:\n";
    std::istringstream in(c.str());
    std::string line;
    while (std::getline(in, line)) {
      out << "// " << line << "\n";
    }
    return out.str();
  }
}

void write_string_array(std::ostream& out, const char* key,
                        const std::vector<std::string>& values) {
  out << "  \"" << key << "\": [";
  for (std::size_t i = 0; i < values.size(); ++i) {
    out << (i == 0 ? "" : ", ") << '"' << json_escape(values[i]) << '"';
  }
  out << "],\n";
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string write_finding(const std::string& dir, const CorpusEntry& entry,
                          const ir::Circuit& circuit,
                          const ir::Circuit* shrunk) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw Error::bad_input("corpus: cannot create directory " + dir + ": " +
                           ec.message());
  }

  const std::string stem = "case_" + std::to_string(entry.master_seed) + "_" +
                           std::to_string(entry.case_index);
  const std::string qasm_path = dir + "/" + stem + ".qasm";
  const std::string min_path = dir + "/" + stem + ".min.qasm";
  const std::string json_path = dir + "/" + stem + ".json";

  {
    std::ofstream out(qasm_path);
    if (!out) {
      throw Error::bad_input("corpus: cannot write " + qasm_path);
    }
    out << (entry.raw_text.empty() ? serialize(circuit) : entry.raw_text);
  }
  if (shrunk != nullptr) {
    std::ofstream out(min_path);
    if (!out) {
      throw Error::bad_input("corpus: cannot write " + min_path);
    }
    out << serialize(*shrunk);
  }

  // The one-command repro: --case-seed feeds the stored per-case seed
  // straight into the case Rng (run_fuzz would otherwise re-derive
  // case_seed(--seed, 0) and generate a different circuit), and the
  // remaining flags restore every option reproduction depends on.
  std::string replay =
      "qdt fuzz --case-seed " + std::to_string(entry.case_seed);
  if (!entry.plant.empty()) {
    replay += " --plant " + entry.plant;
  }
  if (!entry.parser_fuzz) {
    replay += " --no-parser";
  }
  if (entry.chaos) {
    replay += " --chaos";
  }
  if (entry.max_qubits != 0) {
    replay += " --max-qubits " + std::to_string(entry.max_qubits);
  }
  if (entry.max_ops != 0) {
    replay += " --max-ops " + std::to_string(entry.max_ops);
  }
  if (entry.clifford) {
    replay += " --clifford";
  }

  std::ofstream out(json_path);
  if (!out) {
    throw Error::bad_input("corpus: cannot write " + json_path);
  }
  out << "{\n";
  out << "  \"master_seed\": " << entry.master_seed << ",\n";
  out << "  \"case_seed\": " << entry.case_seed << ",\n";
  out << "  \"case_index\": " << entry.case_index << ",\n";
  out << "  \"classification\": \"" << json_escape(entry.classification)
      << "\",\n";
  out << "  \"detail\": \"" << json_escape(entry.detail) << "\",\n";
  out << "  \"family\": \"" << json_escape(entry.family) << "\",\n";
  out << "  \"chaos\": " << (entry.chaos ? "true" : "false") << ",\n";
  out << "  \"plant\": \"" << json_escape(entry.plant) << "\",\n";
  out << "  \"parser_fuzz\": " << (entry.parser_fuzz ? "true" : "false")
      << ",\n";
  out << "  \"max_qubits\": " << entry.max_qubits << ",\n";
  out << "  \"max_ops\": " << entry.max_ops << ",\n";
  out << "  \"clifford\": " << (entry.clifford ? "true" : "false") << ",\n";
  write_string_array(out, "mutations", entry.mutations);
  write_string_array(out, "checks", entry.checks);
  write_string_array(out, "fault_schedule", entry.fault_schedule);
  out << "  \"qasm\": \"" << json_escape(stem + ".qasm") << "\",\n";
  if (shrunk != nullptr) {
    out << "  \"min_qasm\": \"" << json_escape(stem + ".min.qasm") << "\",\n";
    out << "  \"min_ops\": " << shrunk->size() << ",\n";
    out << "  \"min_qubits\": " << shrunk->num_qubits() << ",\n";
  }
  out << "  \"replay\": \"" << json_escape(replay) << "\",\n";

  // qdt.chaos.* counter snapshot at finding time — the triage context.
  out << "  \"counters\": {";
  const auto snap = obs::snapshot();
  bool first = true;
  for (const auto& c : snap.counters) {
    if (c.name.rfind("qdt.chaos.", 0) != 0) {
      continue;
    }
    out << (first ? "" : ", ") << "\"" << json_escape(c.name)
        << "\": " << c.value;
    first = false;
  }
  out << "}\n";
  out << "}\n";
  return json_path;
}

}  // namespace qdt::chaos
