#include "chaos/fuzzer.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <optional>
#include <ostream>
#include <thread>
#include <utility>

#include "chaos/corpus.hpp"
#include "chaos/shrink.hpp"
#include "guard/budget.hpp"
#include "ir/qasm.hpp"
#include "obs/obs.hpp"
#include "trace/trace.hpp"

namespace qdt::chaos {

namespace {

obs::Counter& g_cases = obs::counter("qdt.chaos.case.total");
obs::Counter& g_agree = obs::counter("qdt.chaos.case.agree");
obs::Counter& g_mismatch = obs::counter("qdt.chaos.case.mismatch");
obs::Counter& g_typed = obs::counter("qdt.chaos.case.typed_error");
obs::Counter& g_escape = obs::counter("qdt.chaos.case.escape");
obs::Counter& g_parser_cases = obs::counter("qdt.chaos.parser.cases");
obs::Counter& g_parser_rejected = obs::counter("qdt.chaos.parser.rejected");
obs::Counter& g_fault_schedules = obs::counter("qdt.chaos.fault.schedules");
obs::Counter& g_fault_fired = obs::counter("qdt.chaos.fault.fired");
obs::Counter& g_fault_degraded = obs::counter("qdt.chaos.fault.degraded");
obs::Counter& g_shrink_calls = obs::counter("qdt.chaos.shrink.calls");
obs::Counter& g_shrink_removed = obs::counter("qdt.chaos.shrink.removed_ops");

void count_outcome(Outcome o, FuzzReport& report) {
  switch (o) {
    case Outcome::Agree:
      ++report.agree;
      g_agree.add();
      break;
    case Outcome::Mismatch:
      ++report.mismatch;
      g_mismatch.add();
      break;
    case Outcome::TypedError:
      ++report.typed_errors;
      g_typed.add();
      break;
    case Outcome::Escape:
      ++report.escapes;
      g_escape.add();
      break;
  }
}

/// Narrow the oracle to the check family that failed, so the shrinker's
/// predicate re-runs only the relevant (cheap) slice of the oracle.
OracleOptions narrowed_options(const OracleOptions& base,
                               const OracleReport& report) {
  OracleOptions opts = base;
  std::string failing;
  for (const auto& c : report.checks) {
    if (c.outcome == report.outcome) {
      failing = c.check;
      break;
    }
  }
  if (failing.rfind("stab:", 0) == 0) {
    // Packed-vs-reference differential: only the stabilizer lane matters.
    opts.max_state_qubits = 0;
    opts.equivalence_checks = false;
    opts.opt_check = false;
  } else if (failing.rfind("state:", 0) == 0) {
    opts.equivalence_checks = false;
    opts.opt_check = false;
  } else if (failing.rfind("opt:", 0) == 0) {
    opts.equivalence_checks = false;
    opts.stabilizer_check = false;
    opts.max_stabilizer_qubits = 0;
  } else if (failing.rfind("ec:", 0) == 0) {
    opts.max_state_qubits = 0;  // skip the state diff entirely
    opts.stabilizer_check = false;
    opts.opt_check = false;
  }
  return opts;
}

}  // namespace

std::uint64_t case_seed(std::uint64_t master_seed, std::size_t index) {
  // splitmix64 — each case's stream is independent of every other's.
  std::uint64_t z = master_seed + 0x9E3779B97F4A7C15ULL *
                                      (static_cast<std::uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  FuzzReport report;
  trace::Span span("qdt.chaos.fuzz.run");
  span.attr("cases", static_cast<std::uint64_t>(options.cases))
      .attr("jobs", static_cast<std::uint64_t>(options.jobs));

  OracleOptions oracle_options = options.oracle;
  if (!options.plant.empty()) {
    oracle_options.adapters = default_state_adapters();
    oracle_options.adapters.push_back(planted_adapter(options.plant));
  }

  // Guards the report, the findings list, the log stream, and corpus
  // writes when cases run on worker threads. Every case is a pure function
  // of its case_seed, so only the merge into this shared state needs
  // serializing — the simulation, oracle, and shrink work run unlocked.
  std::mutex mu;
  std::atomic<std::size_t> completed{0};

  const auto run_case = [&](std::size_t i) {
    // A stale armed fault from case k must never fire in case k+1 (fault
    // state is thread-local, so this resets only the current worker).
    guard::clear_faults();

    trace::Span case_span("qdt.chaos.case.run");
    case_span.attr("case", static_cast<std::uint64_t>(i));

    const std::uint64_t seed =
        options.seed_is_case_seed ? options.seed : case_seed(options.seed, i);
    Rng rng(seed);
    GeneratedCase gen = generate_case(rng, options.generator);
    g_cases.add();

    if (options.trace && options.log != nullptr) {
      const std::lock_guard<std::mutex> lock(mu);
      *options.log << "case " << i << " seed " << seed << " family "
                   << gen.family << " n=" << gen.circuit.num_qubits()
                   << " ops=" << gen.circuit.size() << "\n"
                   << std::flush;
    }

    // -- Differential + metamorphic oracle -----------------------------------
    const OracleReport oracle = run_oracle(gen.circuit, oracle_options);
    Outcome case_outcome = oracle.outcome;
    std::string case_detail = oracle.detail;
    bool from_chaos = false;

    // -- Parser fuzzing on the serialized case -------------------------------
    std::string parser_text;
    CheckResult parser;
    bool parser_rejected = false;
    if (options.parser_fuzz) {
      try {
        parser_text = mutate_qasm_text(ir::to_qasm(gen.circuit), rng);
      } catch (const Error&) {
        // Case not QASM-expressible (>2 controls) — fuzz a library header
        // instead so the parser still gets exercised.
        parser_text = mutate_qasm_text(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\n"
            "cx q[0], q[1];\n",
            rng);
      }
      parser = run_parser_oracle(parser_text);
      g_parser_cases.add();
      if (parser.outcome == Outcome::TypedError) {
        parser_rejected = true;
        g_parser_rejected.add();
      }
      if (worse(parser.outcome, case_outcome) != case_outcome &&
          parser.outcome != Outcome::TypedError) {
        case_outcome = parser.outcome;
        case_detail = parser.check + ": " + parser.detail;
      }
    }

    // -- Chaos mode: the same case under randomized fault schedules ----------
    ChaosResult chaos;
    ChaosOptions chaos_opts = options.chaos_options;
    if (options.chaos) {
      // GC stress rides along: unless the caller pinned a threshold, force
      // DD collections at a per-case randomized node count so safe points
      // land at different gate boundaries every case, and the bitwise
      // GC-on/GC-off differential inside run_chaos_case stays armed.
      if (chaos_opts.dd_gc_threshold == 0) {
        chaos_opts.dd_gc_threshold = 1 + rng.index(64);
      }
      const auto schedule = random_fault_schedule(rng, chaos_opts);
      chaos = run_chaos_case(gen.circuit, schedule, chaos_opts);
      g_fault_schedules.add();
      g_fault_fired.add(chaos.faults_fired);
      if (chaos.degraded) {
        g_fault_degraded.add();
      }
      if (chaos.outcome != Outcome::Agree &&
          worse(chaos.outcome, case_outcome) == chaos.outcome) {
        case_outcome = chaos.outcome;
        case_detail = chaos.detail;
        from_chaos = true;
      }
    }

    // -- Triage: shrink findings (unlocked — the predicate re-simulates) -----
    std::optional<Finding> finding;
    bool parser_finding = false;
    if (case_outcome == Outcome::Mismatch || case_outcome == Outcome::Escape) {
      finding.emplace();
      finding->case_index = i;
      finding->case_seed = seed;
      finding->classification = outcome_name(case_outcome);
      finding->detail = case_detail;
      finding->chaos = from_chaos;
      finding->circuit = gen.circuit;
      finding->shrunk = gen.circuit;

      parser_finding = options.parser_fuzz && parser.outcome == case_outcome &&
                       !oracle.is_finding() && !from_chaos;

      if (options.shrink_findings && !parser_finding) {
        FailPredicate predicate;
        if (from_chaos) {
          const auto schedule = chaos.schedule;
          // Capture the case's resolved options (including the randomized
          // dd_gc_threshold) so the shrinker reproduces the same GC stress.
          predicate = [=, target = case_outcome](const ir::Circuit& cand) {
            return run_chaos_case(cand, schedule, chaos_opts).outcome ==
                   target;
          };
        } else {
          const OracleOptions narrowed =
              narrowed_options(oracle_options, oracle);
          predicate = [narrowed,
                       target = case_outcome](const ir::Circuit& cand) {
            return run_oracle(cand, narrowed).outcome == target;
          };
        }
        const ShrinkResult shrunk = shrink(gen.circuit, predicate);
        finding->shrunk = shrunk.minimal;
        g_shrink_calls.add(shrunk.predicate_calls);
        g_shrink_removed.add(shrunk.ops_removed);
        guard::clear_faults();  // chaos predicates arm faults
      }
    }

    // -- Merge into the shared report (and persist) --------------------------
    const std::lock_guard<std::mutex> lock(mu);
    ++report.cases;
    if (options.parser_fuzz) {
      ++report.parser_cases;
      if (parser_rejected) {
        ++report.parser_rejected;
      }
    }
    if (options.chaos) {
      ++report.chaos_cases;
      report.chaos_faults_fired += chaos.faults_fired;
      if (chaos.degraded) {
        ++report.chaos_degraded;
      }
    }
    count_outcome(case_outcome, report);

    if (finding) {
      if (!options.corpus_dir.empty()) {
        CorpusEntry entry;
        entry.master_seed = options.seed;
        entry.case_seed = seed;
        entry.case_index = i;
        entry.classification = finding->classification;
        entry.detail = finding->detail;
        entry.family = gen.family;
        entry.mutations = gen.mutations;
        entry.chaos = from_chaos;
        // Everything the replay command needs: the planted adapter and
        // parser fuzzing consume RNG draws / change the oracle, and the
        // generator caps shape the circuit itself.
        entry.plant = options.plant;
        entry.parser_fuzz = options.parser_fuzz;
        entry.max_qubits = options.generator.max_qubits;
        entry.max_ops = options.generator.max_ops;
        entry.clifford = options.generator.clifford_only;
        for (const auto& c : oracle.checks) {
          entry.checks.push_back(c.check + ": " + outcome_name(c.outcome));
        }
        if (from_chaos) {
          for (const auto& f : chaos.schedule) {
            entry.fault_schedule.push_back(f.str());
          }
        }
        if (parser_finding) {
          entry.raw_text = parser_text;
        }
        finding->corpus_json = write_finding(
            options.corpus_dir, entry, finding->circuit,
            finding->shrunk.size() < finding->circuit.size() ? &finding->shrunk
                                                             : nullptr);
      }

      if (options.log != nullptr) {
        *options.log << "FINDING case " << i << " (seed " << seed << "): "
                     << finding->classification << " — " << finding->detail
                     << "\n";
        if (finding->shrunk.size() < finding->circuit.size()) {
          *options.log << "  shrunk " << finding->circuit.size() << " -> "
                       << finding->shrunk.size() << " ops\n";
        }
        if (!finding->corpus_json.empty()) {
          *options.log << "  corpus: " << finding->corpus_json << "\n";
        }
      }
      report.findings.push_back(std::move(*finding));
    }

    const std::size_t done = completed.fetch_add(1) + 1;
    if (options.log != nullptr && done % 100 == 0) {
      *options.log << "fuzz: " << done << "/" << options.cases << " cases, "
                   << report.findings.size() << " findings\n";
    }
  };

  const auto stop_requested = [&options] {
    return options.stop != nullptr &&
           options.stop->load(std::memory_order_relaxed);
  };

  const std::size_t jobs =
      std::min(std::max<std::size_t>(1, options.jobs), options.cases);
  if (jobs <= 1) {
    for (std::size_t i = 0; i < options.cases; ++i) {
      if (stop_requested()) {
        report.interrupted = true;
        break;
      }
      run_case(i);
    }
  } else {
    // Workers pull case indices from a shared cursor. Budgets are
    // thread-local, so each worker adopts the caller's resolved limits;
    // fault schedules armed by chaos cases stay on the arming worker.
    std::atomic<std::size_t> next_case{0};
    std::exception_ptr first_error;
    std::mutex error_mu;
    const guard::Limits* parent_limits = guard::current_limits();
    const std::uint64_t parent_span = trace::current_span();
    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (std::size_t w = 0; w < jobs; ++w) {
      workers.emplace_back([&, parent_limits, parent_span] {
        // Adopt the submitting thread's trace context so per-case spans
        // parent under the fuzz driver instead of floating as orphans.
        const trace::ContextScope trace_scope(parent_span);
        std::optional<guard::BudgetScope> scope;
        if (parent_limits != nullptr) {
          scope.emplace(*parent_limits);
        }
        for (;;) {
          if (stop_requested()) {
            break;  // drain: finish nothing new, keep what already ran
          }
          const std::size_t i = next_case.fetch_add(1);
          if (i >= options.cases) {
            break;
          }
          try {
            run_case(i);
          } catch (...) {
            const std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) {
              first_error = std::current_exception();
            }
            next_case.store(options.cases);  // cancel remaining cases
            break;
          }
        }
        guard::clear_faults();
      });
    }
    for (auto& t : workers) {
      t.join();
    }
    if (first_error) {
      std::rethrow_exception(first_error);
    }
    report.interrupted = stop_requested() && report.cases < options.cases;
    // Completion order is nondeterministic; the findings list is not.
    std::sort(report.findings.begin(), report.findings.end(),
              [](const Finding& a, const Finding& b) {
                return a.case_index < b.case_index;
              });
  }

  guard::clear_faults();
  return report;
}

}  // namespace qdt::chaos
