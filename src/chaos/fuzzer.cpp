#include "chaos/fuzzer.hpp"

#include <ostream>
#include <utility>

#include "chaos/corpus.hpp"
#include "chaos/shrink.hpp"
#include "guard/budget.hpp"
#include "ir/qasm.hpp"
#include "obs/obs.hpp"

namespace qdt::chaos {

namespace {

obs::Counter& g_cases = obs::counter("qdt.chaos.case.total");
obs::Counter& g_agree = obs::counter("qdt.chaos.case.agree");
obs::Counter& g_mismatch = obs::counter("qdt.chaos.case.mismatch");
obs::Counter& g_typed = obs::counter("qdt.chaos.case.typed_error");
obs::Counter& g_escape = obs::counter("qdt.chaos.case.escape");
obs::Counter& g_parser_cases = obs::counter("qdt.chaos.parser.cases");
obs::Counter& g_parser_rejected = obs::counter("qdt.chaos.parser.rejected");
obs::Counter& g_fault_schedules = obs::counter("qdt.chaos.fault.schedules");
obs::Counter& g_fault_fired = obs::counter("qdt.chaos.fault.fired");
obs::Counter& g_fault_degraded = obs::counter("qdt.chaos.fault.degraded");
obs::Counter& g_shrink_calls = obs::counter("qdt.chaos.shrink.calls");
obs::Counter& g_shrink_removed = obs::counter("qdt.chaos.shrink.removed_ops");

void count_outcome(Outcome o, FuzzReport& report) {
  switch (o) {
    case Outcome::Agree:
      ++report.agree;
      g_agree.add();
      break;
    case Outcome::Mismatch:
      ++report.mismatch;
      g_mismatch.add();
      break;
    case Outcome::TypedError:
      ++report.typed_errors;
      g_typed.add();
      break;
    case Outcome::Escape:
      ++report.escapes;
      g_escape.add();
      break;
  }
}

/// Narrow the oracle to the check family that failed, so the shrinker's
/// predicate re-runs only the relevant (cheap) slice of the oracle.
OracleOptions narrowed_options(const OracleOptions& base,
                               const OracleReport& report) {
  OracleOptions opts = base;
  std::string failing;
  for (const auto& c : report.checks) {
    if (c.outcome == report.outcome) {
      failing = c.check;
      break;
    }
  }
  if (failing.rfind("state:", 0) == 0) {
    opts.equivalence_checks = false;
  } else if (failing.rfind("ec:", 0) == 0) {
    opts.max_state_qubits = 0;  // skip the state diff entirely
    opts.stabilizer_check = false;
  }
  return opts;
}

}  // namespace

std::uint64_t case_seed(std::uint64_t master_seed, std::size_t index) {
  // splitmix64 — each case's stream is independent of every other's.
  std::uint64_t z = master_seed + 0x9E3779B97F4A7C15ULL *
                                      (static_cast<std::uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  FuzzReport report;

  OracleOptions oracle_options = options.oracle;
  if (!options.plant.empty()) {
    oracle_options.adapters = default_state_adapters();
    oracle_options.adapters.push_back(planted_adapter(options.plant));
  }

  for (std::size_t i = 0; i < options.cases; ++i) {
    // A stale armed fault from case k must never fire in case k+1.
    guard::clear_faults();

    const std::uint64_t seed =
        options.seed_is_case_seed ? options.seed : case_seed(options.seed, i);
    Rng rng(seed);
    GeneratedCase gen = generate_case(rng, options.generator);
    ++report.cases;
    g_cases.add();

    if (options.trace && options.log != nullptr) {
      *options.log << "case " << i << " seed " << seed << " family "
                   << gen.family << " n=" << gen.circuit.num_qubits()
                   << " ops=" << gen.circuit.size() << std::endl;
    }

    // -- Differential + metamorphic oracle -----------------------------------
    const OracleReport oracle = run_oracle(gen.circuit, oracle_options);
    Outcome case_outcome = oracle.outcome;
    std::string case_detail = oracle.detail;
    bool from_chaos = false;

    // -- Parser fuzzing on the serialized case -------------------------------
    std::string parser_text;
    CheckResult parser;
    if (options.parser_fuzz) {
      try {
        parser_text = mutate_qasm_text(ir::to_qasm(gen.circuit), rng);
      } catch (const Error&) {
        // Case not QASM-expressible (>2 controls) — fuzz a library header
        // instead so the parser still gets exercised.
        parser_text = mutate_qasm_text(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\n"
            "cx q[0], q[1];\n",
            rng);
      }
      parser = run_parser_oracle(parser_text);
      ++report.parser_cases;
      g_parser_cases.add();
      if (parser.outcome == Outcome::TypedError) {
        ++report.parser_rejected;
        g_parser_rejected.add();
      }
      if (worse(parser.outcome, case_outcome) != case_outcome &&
          parser.outcome != Outcome::TypedError) {
        case_outcome = parser.outcome;
        case_detail = parser.check + ": " + parser.detail;
      }
    }

    // -- Chaos mode: the same case under randomized fault schedules ----------
    ChaosResult chaos;
    if (options.chaos) {
      const auto schedule = random_fault_schedule(rng, options.chaos_options);
      chaos = run_chaos_case(gen.circuit, schedule, options.chaos_options);
      ++report.chaos_cases;
      g_fault_schedules.add();
      report.chaos_faults_fired += chaos.faults_fired;
      g_fault_fired.add(chaos.faults_fired);
      if (chaos.degraded) {
        ++report.chaos_degraded;
        g_fault_degraded.add();
      }
      if (chaos.outcome != Outcome::Agree &&
          worse(chaos.outcome, case_outcome) == chaos.outcome) {
        case_outcome = chaos.outcome;
        case_detail = chaos.detail;
        from_chaos = true;
      }
    }

    count_outcome(case_outcome, report);

    // -- Triage: shrink and persist findings ---------------------------------
    if (case_outcome == Outcome::Mismatch || case_outcome == Outcome::Escape) {
      Finding finding;
      finding.case_index = i;
      finding.case_seed = seed;
      finding.classification = outcome_name(case_outcome);
      finding.detail = case_detail;
      finding.chaos = from_chaos;
      finding.circuit = gen.circuit;
      finding.shrunk = gen.circuit;

      const bool parser_finding =
          options.parser_fuzz && parser.outcome == case_outcome &&
          !oracle.is_finding() && !from_chaos;

      if (options.shrink_findings && !parser_finding) {
        FailPredicate predicate;
        if (from_chaos) {
          const auto schedule = chaos.schedule;
          const auto chaos_opts = options.chaos_options;
          predicate = [=, target = case_outcome](const ir::Circuit& cand) {
            return run_chaos_case(cand, schedule, chaos_opts).outcome ==
                   target;
          };
        } else {
          const OracleOptions narrowed =
              narrowed_options(oracle_options, oracle);
          predicate = [narrowed,
                       target = case_outcome](const ir::Circuit& cand) {
            return run_oracle(cand, narrowed).outcome == target;
          };
        }
        const ShrinkResult shrunk = shrink(gen.circuit, predicate);
        finding.shrunk = shrunk.minimal;
        g_shrink_calls.add(shrunk.predicate_calls);
        g_shrink_removed.add(shrunk.ops_removed);
        guard::clear_faults();  // chaos predicates arm faults
      }

      if (!options.corpus_dir.empty()) {
        CorpusEntry entry;
        entry.master_seed = options.seed;
        entry.case_seed = seed;
        entry.case_index = i;
        entry.classification = finding.classification;
        entry.detail = finding.detail;
        entry.family = gen.family;
        entry.mutations = gen.mutations;
        entry.chaos = from_chaos;
        // Everything the replay command needs: the planted adapter and
        // parser fuzzing consume RNG draws / change the oracle, and the
        // generator caps shape the circuit itself.
        entry.plant = options.plant;
        entry.parser_fuzz = options.parser_fuzz;
        entry.max_qubits = options.generator.max_qubits;
        entry.max_ops = options.generator.max_ops;
        for (const auto& c : oracle.checks) {
          entry.checks.push_back(c.check + ": " + outcome_name(c.outcome));
        }
        if (from_chaos) {
          for (const auto& f : chaos.schedule) {
            entry.fault_schedule.push_back(f.str());
          }
        }
        if (parser_finding) {
          entry.raw_text = parser_text;
        }
        finding.corpus_json = write_finding(
            options.corpus_dir, entry, finding.circuit,
            finding.shrunk.size() < finding.circuit.size() ? &finding.shrunk
                                                           : nullptr);
      }

      if (options.log != nullptr) {
        *options.log << "FINDING case " << i << " (seed " << seed << "): "
                     << finding.classification << " — " << finding.detail
                     << "\n";
        if (finding.shrunk.size() < finding.circuit.size()) {
          *options.log << "  shrunk " << finding.circuit.size() << " -> "
                       << finding.shrunk.size() << " ops\n";
        }
        if (!finding.corpus_json.empty()) {
          *options.log << "  corpus: " << finding.corpus_json << "\n";
        }
      }
      report.findings.push_back(std::move(finding));
    }

    if (options.log != nullptr && (i + 1) % 100 == 0) {
      *options.log << "fuzz: " << (i + 1) << "/" << options.cases
                   << " cases, " << report.findings.size() << " findings\n";
    }
  }

  guard::clear_faults();
  return report;
}

}  // namespace qdt::chaos
