// Noise-aware quantum circuit simulation with decision diagrams [13]:
// the density matrix is held as a *matrix* DD, gates act as
// rho -> U rho U^dagger (two DD multiplications) and Kraus channels as
// rho -> sum_k K_k rho K_k^dagger (non-unitary gate DDs + DD addition).
//
// This is the exact counterpart of arrays::DensityMatrix: the probabilities
// agree to numerical precision, but redundancy-heavy mixed states stay
// polynomial-size instead of 4^n.
#pragma once

#include <cstdint>
#include <vector>

#include "arrays/noise.hpp"
#include "dd/package.hpp"
#include "ir/circuit.hpp"

namespace qdt::dd {

class DDDensitySimulator {
 public:
  explicit DDDensitySimulator(std::size_t num_qubits);
  ~DDDensitySimulator() { pkg_.dec_ref(rho_); }
  DDDensitySimulator(const DDDensitySimulator&) = delete;
  DDDensitySimulator& operator=(const DDDensitySimulator&) = delete;

  Package& package() { return pkg_; }
  MatEdge rho() const { return rho_; }
  std::size_t num_qubits() const { return pkg_.num_qubits(); }

  /// rho -> U rho U^dagger for a unitary catalogue operation.
  void apply(const ir::Operation& op);

  /// Apply a single-qubit Kraus channel to qubit q (exact, not sampled).
  void apply_channel(const arrays::KrausChannel& channel, ir::Qubit q);

  /// Run a circuit under a noise model (channels after every gate;
  /// measurements become non-selective collapses, resets map to |0>).
  void run(const ir::Circuit& circuit, const arrays::NoiseModel& noise);

  /// Measurement distribution (diagonal of rho); exponential output, for
  /// small n / tests.
  std::vector<double> probabilities() const;

  /// Probability that measuring qubit q yields 1: Tr(P1 rho).
  double prob_one(ir::Qubit q);

  /// Tr(rho) — 1 up to numerical error for trace-preserving evolution.
  double trace_real();

  /// Tr(rho^2): 1 for pure states, down to 2^-n for the maximally mixed.
  double purity();

  /// <psi| rho |psi> for a pure reference state given as a vector DD.
  double fidelity(VecEdge psi);

  /// Nodes in the density-matrix DD — the [13] compactness metric.
  std::size_t node_count() const { return pkg_.node_count(rho_); }

 private:
  /// The only way rho_ changes: protect the new root before releasing the
  /// old one, keeping the density DD safe across garbage collections.
  void set_rho(MatEdge next) {
    pkg_.inc_ref(next);
    pkg_.dec_ref(rho_);
    rho_ = next;
  }

  Package pkg_;
  MatEdge rho_;
};

}  // namespace qdt::dd
