// Decision-diagram based quantum circuit simulation [9]: the state is held
// as a vector DD and every gate is applied as a matrix-DD multiplication.
// Redundancy-heavy states (GHZ, Grover intermediates, basis-like states)
// stay polynomial-size where the array backend needs 2^n amplitudes.
//
// Also implements stochastic noise-aware simulation [13]: Kraus operators
// are applied as (non-unitary) matrix DDs and one branch is sampled per
// application, giving quantum-trajectory semantics identical to the array
// backend's.
//
// The simulator is a GC-cooperating driver: the current state edge is the
// one root it holds, kept ref-protected from construction to destruction
// (every state transition goes through set_state, inc-before-dec), and
// run() offers the package a collection safe point between gates.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "arrays/noise.hpp"
#include "common/rng.hpp"
#include "dd/package.hpp"
#include "ir/circuit.hpp"

namespace qdt::dd {

class DDSimulator {
 public:
  explicit DDSimulator(std::size_t num_qubits, std::uint64_t seed = 1)
      : owned_(std::make_unique<Package>(num_qubits)),
        pkg_(owned_.get()),
        rng_(seed),
        state_(pkg_->zero_state()) {
    pkg_->inc_ref(state_);
  }

  /// Simulate on an external package (a pooled one, or one shared with
  /// other DDs the caller keeps ref-protected). The package must outlive
  /// the simulator.
  explicit DDSimulator(Package& pkg, std::uint64_t seed = 1)
      : pkg_(&pkg), rng_(seed), state_(pkg_->zero_state()) {
    pkg_->inc_ref(state_);
  }

  ~DDSimulator() { pkg_->dec_ref(state_); }
  DDSimulator(const DDSimulator&) = delete;
  DDSimulator& operator=(const DDSimulator&) = delete;

  Package& package() { return *pkg_; }
  VecEdge state() const { return state_; }
  std::size_t num_qubits() const { return pkg_->num_qubits(); }

  /// Stochastic (trajectory) noise applied after every gate.
  void set_noise(arrays::NoiseModel noise) { noise_ = std::move(noise); }

  /// Reset to |0...0>.
  void reset_state() { set_state(pkg_->zero_state()); }

  /// Execute the whole circuit (measurements collapse the state); returns
  /// the measurement record.
  std::vector<std::pair<ir::Qubit, bool>> run(const ir::Circuit& circuit);

  /// Apply a single unitary operation.
  void apply(const ir::Operation& op);

  /// Measure one qubit, collapsing the state.
  bool measure(ir::Qubit q);

  /// Single amplitude of the current state.
  Complex amplitude(std::uint64_t basis_state) const {
    return pkg_->amplitude(state_, basis_state);
  }

  /// Dense readout (exponential; small n only).
  std::vector<Complex> state_vector() const {
    return pkg_->to_vector(state_);
  }

  /// Weak simulation: sample full readouts without computing the dense
  /// vector.
  std::map<std::uint64_t, std::size_t> sample_counts(std::size_t shots);

  /// Number of DD nodes in the current state — the paper's compactness
  /// metric.
  std::size_t state_node_count() const { return pkg_->node_count(state_); }

  /// Node count of the state after each applied operation (filled by run).
  const std::vector<std::size_t>& node_count_trace() const {
    return node_trace_;
  }

 private:
  void apply_noise_trajectory(ir::Qubit q, const arrays::KrausChannel& ch);
  /// Rescale the state edge weight by a real factor.
  void scale_state(double factor);
  /// The only way state_ changes: protect the new root before releasing
  /// the old one, so a shared node never transiently hits ref 0.
  void set_state(VecEdge next) {
    pkg_->inc_ref(next);
    pkg_->dec_ref(state_);
    state_ = next;
  }

  std::unique_ptr<Package> owned_;  // null when running on an external package
  Package* pkg_;
  Rng rng_;
  VecEdge state_;
  arrays::NoiseModel noise_;
  std::vector<std::size_t> node_trace_;
};

}  // namespace qdt::dd
