#include "dd/pool.hpp"

#include <memory>
#include <vector>

#include "obs/obs.hpp"

namespace qdt::dd {

namespace {

obs::Counter& g_pool_hits = obs::counter("qdt.dd.pool.hits");
obs::Counter& g_pool_misses = obs::counter("qdt.dd.pool.misses");

// At most two idle packages per thread (a worker's request loop plus one
// nested use, e.g. amplitude queries inside a simulate), and never one
// whose retained storage tops 64 MiB.
constexpr std::size_t kPoolMax = 2;
constexpr std::size_t kPoolMaxBytes = std::size_t{64} << 20;

std::vector<std::unique_ptr<Package>>& pool() {
  thread_local std::vector<std::unique_ptr<Package>> p;
  return p;
}

}  // namespace

PackageLease::PackageLease(std::size_t num_qubits) {
  auto& p = pool();
  if (!p.empty()) {
    g_pool_hits.add();
    std::unique_ptr<Package> pkg = std::move(p.back());
    p.pop_back();
    pkg->reset(num_qubits);
    pkg_ = pkg.release();
  } else {
    g_pool_misses.add();
    pkg_ = new Package(num_qubits);
  }
}

PackageLease::~PackageLease() {
  std::unique_ptr<Package> pkg(pkg_);
  auto& p = pool();
  if (p.size() < kPoolMax && pkg->footprint_bytes() <= kPoolMaxBytes) {
    p.push_back(std::move(pkg));
  }
}

std::size_t pool_size() { return pool().size(); }

void trim_pool() { pool().clear(); }

}  // namespace qdt::dd
