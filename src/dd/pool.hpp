// Thread-local pool of dd::Package instances for per-request reuse.
//
// A long-running driver (qdt serve worker, the fuzzer's case loop, the
// robust ladder) creates one Package per request; construction is cheap but
// the *storage* a request grows — node deques, unique-table buckets, the
// complex table — is exactly what the next request would grow again.
// PackageLease hands out a pooled package reset() to the requested width
// instead: tables come back empty, every node slot sits on the free lists,
// and the underlying capacity is reused, so a daemon's RSS plateaus after
// warm-up instead of climbing with every request.
//
// The pool is thread-local (packages are single-threaded objects; a worker
// thread reuses its own), holds at most kPoolMax idle packages, and drops
// any package whose retained footprint exceeds kPoolMaxBytes — one
// pathological request must not pin its peak forever.
#pragma once

#include <cstddef>

#include "dd/package.hpp"

namespace qdt::dd {

/// RAII lease on a pooled Package, reset to `num_qubits` (and to this
/// thread's current_package_config()). Returns the package to the pool on
/// destruction unless the pool is full or the package grew too large.
class PackageLease {
 public:
  explicit PackageLease(std::size_t num_qubits);
  ~PackageLease();
  PackageLease(const PackageLease&) = delete;
  PackageLease& operator=(const PackageLease&) = delete;

  Package& get() { return *pkg_; }
  Package* operator->() { return pkg_; }
  Package& operator*() { return *pkg_; }

 private:
  Package* pkg_;
};

/// Idle packages currently pooled on this thread.
std::size_t pool_size();

/// Destroy this thread's idle pooled packages (worker shutdown; tests).
void trim_pool();

}  // namespace qdt::dd
