// Decision-diagram based equivalence checking [20]: two circuits realize
// the same functionality iff U1 * U2^dagger is the identity (up to a global
// phase). The miter U1 * U2^dagger is built gate by gate; the *alternating*
// strategy interleaves gates from both circuits so the intermediate DD
// stays close to the identity (and therefore small) whenever the circuits
// are in fact equivalent.
#pragma once

#include <cstdint>
#include <string>

#include "ir/circuit.hpp"

namespace qdt::dd {

enum class EcStrategy {
  /// Build all of U1 first, then multiply c2's inverse gates.
  Sequential,
  /// Interleave c1 (from the left) and c2^dagger (from the right)
  /// proportionally to the circuit sizes — the "keep it close to the
  /// identity" scheme of advanced DD equivalence checking.
  Alternating,
};

struct EcResult {
  bool equivalent = false;
  /// Maximum matrix-DD node count observed while building the miter — the
  /// memory proxy reported by the benchmarks.
  std::size_t peak_nodes = 0;
  std::size_t gates_applied = 0;
  std::string note;
};

/// Functional equivalence (up to global phase) of two unitary circuits of
/// equal width.
EcResult check_equivalence_dd(const ir::Circuit& c1, const ir::Circuit& c2,
                              EcStrategy strategy = EcStrategy::Alternating);

/// Probabilistic equivalence check by simulation: runs both circuits on
/// `num_stimuli` random computational-basis inputs and compares fidelities.
/// Fast and catches almost every real bug, but can only *disprove*
/// equivalence with certainty.
EcResult check_equivalence_dd_simulative(const ir::Circuit& c1,
                                         const ir::Circuit& c2,
                                         std::size_t num_stimuli,
                                         std::uint64_t seed = 7);

}  // namespace qdt::dd
