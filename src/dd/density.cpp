#include "dd/density.hpp"

#include <stdexcept>

namespace qdt::dd {

DDDensitySimulator::DDDensitySimulator(std::size_t num_qubits)
    : pkg_(num_qubits) {
  // |0..0><0..0|: one path through the (0,0) quadrant at every level.
  MatEdge e = MatEdge::one();
  for (std::uint32_t var = 0; var < num_qubits; ++var) {
    e = pkg_.make_mat_node(
        var, {e, MatEdge::zero(), MatEdge::zero(), MatEdge::zero()});
  }
  rho_ = e;
  pkg_.inc_ref(rho_);
}

void DDDensitySimulator::apply(const ir::Operation& op) {
  const MatEdge u = pkg_.gate_dd(op);
  set_rho(
      pkg_.multiply(u, pkg_.multiply(rho_, pkg_.conjugate_transpose(u))));
}

void DDDensitySimulator::apply_channel(const arrays::KrausChannel& channel,
                                       ir::Qubit q) {
  MatEdge acc = MatEdge::zero();
  for (const auto& k : channel.ops) {
    const MatEdge kdd = pkg_.single_qubit_dd(k, q);
    const MatEdge term =
        pkg_.multiply(kdd, pkg_.multiply(rho_, pkg_.conjugate_transpose(kdd)));
    acc = pkg_.add(acc, term);
  }
  set_rho(acc);
}

void DDDensitySimulator::run(const ir::Circuit& circuit,
                             const arrays::NoiseModel& noise) {
  if (circuit.num_qubits() != pkg_.num_qubits()) {
    throw std::invalid_argument("DDDensitySimulator::run: width mismatch");
  }
  for (const auto& op : circuit.ops()) {
    // Safe point between operations: rho_ is the only root and it is
    // ref-protected.
    pkg_.maybe_collect_garbage();
    if (op.is_barrier()) {
      continue;
    }
    if (op.is_measurement() || op.is_reset()) {
      for (const auto q : op.targets()) {
        Mat2 p0;
        p0(0, 0) = 1.0;
        Mat2 p1_or_reset;
        if (op.is_reset()) {
          p1_or_reset(0, 1) = 1.0;  // X * P1: |1> branch lands in |0>
        } else {
          p1_or_reset(1, 1) = 1.0;  // non-selective measurement
        }
        apply_channel(
            arrays::KrausChannel{op.is_reset() ? "reset" : "measure",
                                 {p0, p1_or_reset}},
            q);
      }
      continue;
    }
    apply(op);
    for (const auto& ch : noise.gate_noise) {
      for (const auto q : op.qubits()) {
        apply_channel(ch, q);
      }
    }
  }
}

std::vector<double> DDDensitySimulator::probabilities() const {
  const auto dense = pkg_.to_matrix(rho_);
  const std::size_t dim = std::size_t{1} << pkg_.num_qubits();
  std::vector<double> p(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    p[i] = dense[i * dim + i].real();
  }
  return p;
}

double DDDensitySimulator::prob_one(ir::Qubit q) {
  Mat2 p1;
  p1(1, 1) = 1.0;
  const MatEdge proj = pkg_.single_qubit_dd(p1, q);
  return pkg_.trace(pkg_.multiply(proj, rho_)).real();
}

double DDDensitySimulator::trace_real() {
  return pkg_.trace(rho_).real();
}

double DDDensitySimulator::purity() {
  return pkg_.trace(pkg_.multiply(rho_, rho_)).real();
}

double DDDensitySimulator::fidelity(VecEdge psi) {
  // <psi| rho |psi> = <psi, rho psi>.
  const VecEdge rho_psi = pkg_.multiply(rho_, psi);
  return pkg_.inner_product(psi, rho_psi).real();
}

}  // namespace qdt::dd
