#include "dd/complex_table.hpp"

#include <cmath>

namespace qdt::dd {

namespace {
// Bucket width: twice the comparison tolerance, so any two values considered
// equal are at most one bucket apart in each direction.
constexpr double kBucket = 2.0 * kEps;
}  // namespace

ComplexTable::ComplexTable() {
  values_.push_back(Complex{0.0, 0.0});  // kZero
  values_.push_back(Complex{1.0, 0.0});  // kOne
  buckets_[key_of(values_[0])].push_back(0);
  buckets_[key_of(values_[1])].push_back(1);
}

ComplexTable::Key ComplexTable::key_of(const Complex& c) const {
  return Key{static_cast<std::int64_t>(std::llround(c.real() / kBucket)),
             static_cast<std::int64_t>(std::llround(c.imag() / kBucket))};
}

ComplexTable::Index ComplexTable::lookup(const Complex& c) {
  const Key base = key_of(c);
  for (std::int64_t dr = -1; dr <= 1; ++dr) {
    for (std::int64_t di = -1; di <= 1; ++di) {
      const Key k{base.re + dr, base.im + di};
      const auto it = buckets_.find(k);
      if (it == buckets_.end()) {
        continue;
      }
      for (const Index idx : it->second) {
        if (approx_equal(values_[idx], c)) {
          return idx;
        }
      }
    }
  }
  const auto idx = static_cast<Index>(values_.size());
  values_.push_back(c);
  buckets_[base].push_back(idx);
  return idx;
}

ComplexTable::Index ComplexTable::mul(Index a, Index b) {
  if (a == kZero || b == kZero) {
    return kZero;
  }
  if (a == kOne) {
    return b;
  }
  if (b == kOne) {
    return a;
  }
  return lookup(values_[a] * values_[b]);
}

ComplexTable::Index ComplexTable::add(Index a, Index b) {
  if (a == kZero) {
    return b;
  }
  if (b == kZero) {
    return a;
  }
  return lookup(values_[a] + values_[b]);
}

ComplexTable::Index ComplexTable::div(Index a, Index b) {
  if (a == kZero) {
    return kZero;
  }
  if (b == kOne) {
    return a;
  }
  return lookup(values_[a] / values_[b]);
}

ComplexTable::Index ComplexTable::conj(Index a) {
  if (a <= kOne) {
    return a;
  }
  return lookup(std::conj(values_[a]));
}

ComplexTable::Index ComplexTable::neg(Index a) {
  if (a == kZero) {
    return a;
  }
  return lookup(-values_[a]);
}

double ComplexTable::norm2(Index a) const { return std::norm(values_[a]); }

bool ComplexTable::equal_modulus(Index a, Index b) const {
  return approx_equal(std::abs(values_[a]), std::abs(values_[b]));
}

}  // namespace qdt::dd
