#include "dd/complex_table.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "guard/error.hpp"

namespace qdt::dd {

namespace {
// Bucket width: twice the comparison tolerance, so any two values considered
// equal are at most one bucket apart in each direction.
constexpr double kBucket = 2.0 * kEps;
}  // namespace

ComplexTable::ComplexTable() {
  values_.push_back(Complex{0.0, 0.0});  // kZero
  values_.push_back(Complex{1.0, 0.0});  // kOne
  pins_.assign(2, 0);
  dead_.assign(2, 0);
  buckets_[key_of(values_[0])].push_back(0);
  buckets_[key_of(values_[1])].push_back(1);
}

ComplexTable::Key ComplexTable::key_of(const Complex& c) const {
  return Key{static_cast<std::int64_t>(std::llround(c.real() / kBucket)),
             static_cast<std::int64_t>(std::llround(c.imag() / kBucket))};
}

ComplexTable::Index ComplexTable::lookup(const Complex& c) {
  const Key base = key_of(c);
  for (std::int64_t dr = -1; dr <= 1; ++dr) {
    for (std::int64_t di = -1; di <= 1; ++di) {
      const Key k{base.re + dr, base.im + di};
      const auto it = buckets_.find(k);
      if (it == buckets_.end()) {
        continue;
      }
      for (const Index idx : it->second) {
        if (approx_equal(values_[idx], c)) {
          return idx;
        }
      }
    }
  }
  Index idx;
  if (!free_.empty()) {
    // Recycle a swept slot: indices stay dense and the values_ vector stops
    // growing once the working set stabilizes.
    idx = free_.back();
    free_.pop_back();
    values_[idx] = c;
    dead_[idx] = 0;
    pins_[idx] = 0;
  } else {
    idx = static_cast<Index>(values_.size());
    values_.push_back(c);
    pins_.push_back(0);
    dead_.push_back(0);
  }
  buckets_[base].push_back(idx);
  return idx;
}

ComplexTable::Index ComplexTable::mul(Index a, Index b) {
  if (a == kZero || b == kZero) {
    return kZero;
  }
  if (a == kOne) {
    return b;
  }
  if (b == kOne) {
    return a;
  }
  return lookup(values_[a] * values_[b]);
}

ComplexTable::Index ComplexTable::add(Index a, Index b) {
  if (a == kZero) {
    return b;
  }
  if (b == kZero) {
    return a;
  }
  return lookup(values_[a] + values_[b]);
}

ComplexTable::Index ComplexTable::div(Index a, Index b) {
  if (a == kZero) {
    return kZero;
  }
  if (b == kOne) {
    return a;
  }
  return lookup(values_[a] / values_[b]);
}

ComplexTable::Index ComplexTable::conj(Index a) {
  if (a <= kOne) {
    return a;
  }
  return lookup(std::conj(values_[a]));
}

ComplexTable::Index ComplexTable::neg(Index a) {
  if (a == kZero) {
    return a;
  }
  return lookup(-values_[a]);
}

double ComplexTable::norm2(Index a) const { return std::norm(values_[a]); }

bool ComplexTable::equal_modulus(Index a, Index b) const {
  return approx_equal(std::abs(values_[a]), std::abs(values_[b]));
}

void ComplexTable::pin(Index i) {
  if (i <= kOne) {
    return;
  }
  if (pins_[i] == std::numeric_limits<std::uint32_t>::max()) {
    return;
  }
  ++pins_[i];
}

void ComplexTable::unpin(Index i) {
  if (i <= kOne) {
    return;
  }
  if (pins_[i] == std::numeric_limits<std::uint32_t>::max()) {
    return;
  }
  if (pins_[i] == 0) {
    throw Error::internal("ComplexTable::unpin: pin count underflow at index " +
                          std::to_string(i));
  }
  --pins_[i];
}

void ComplexTable::mark_pinned(std::vector<char>& keep) const {
  for (std::size_t i = 0; i < pins_.size(); ++i) {
    if (pins_[i] > 0) {
      keep[i] = 1;
    }
  }
}

std::size_t ComplexTable::sweep(const std::vector<char>& keep) {
  std::size_t freed = 0;
  for (Index i = kOne + 1; i < values_.size(); ++i) {
    if (keep[i] != 0 || dead_[i] != 0) {
      continue;
    }
    // Values never mutate in place (reuse re-inserts under the new value's
    // key), so key_of(values_[i]) is the bucket the slot was filed under.
    auto& bucket = buckets_[key_of(values_[i])];
    bucket.erase(std::remove(bucket.begin(), bucket.end(), i), bucket.end());
    dead_[i] = 1;
    pins_[i] = 0;
    free_.push_back(i);
    ++freed;
  }
  return freed;
}

void ComplexTable::reset() {
  values_.resize(2);
  pins_.assign(2, 0);
  dead_.assign(2, 0);
  free_.clear();
  buckets_.clear();
  buckets_[key_of(values_[0])].push_back(0);
  buckets_[key_of(values_[1])].push_back(1);
}

}  // namespace qdt::dd
