// Graphviz export of decision diagrams — the textual counterpart of the
// web-based DD visualization tool the paper points to [30].
#pragma once

#include <string>

#include "dd/package.hpp"

namespace qdt::dd {

/// DOT digraph of a vector DD. Edge labels show the complex weights
/// (weight-1 edges are unlabelled, matching the paper's drawing style);
/// zero successors are drawn as 0-stubs.
std::string to_dot(const Package& pkg, VecEdge root,
                   const std::string& name = "vector_dd");

/// DOT digraph of a matrix DD.
std::string to_dot(const Package& pkg, MatEdge root,
                   const std::string& name = "matrix_dd");

}  // namespace qdt::dd
