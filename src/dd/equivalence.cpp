#include "dd/equivalence.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/rng.hpp"
#include "dd/package.hpp"
#include "guard/budget.hpp"
#include "guard/error.hpp"

namespace qdt::dd {

namespace {

std::vector<ir::Operation> unitary_ops(const ir::Circuit& c) {
  std::vector<ir::Operation> ops;
  for (const auto& op : c.ops()) {
    if (op.is_barrier()) {
      continue;
    }
    if (!op.is_unitary()) {
      throw Error::bad_input(
          "equivalence checking requires unitary circuits (found " +
          op.str() + ")");
    }
    ops.push_back(op);
  }
  return ops;
}

}  // namespace

EcResult check_equivalence_dd(const ir::Circuit& c1, const ir::Circuit& c2,
                              EcStrategy strategy) {
  if (c1.num_qubits() != c2.num_qubits()) {
    return {false, 0, 0, "width mismatch"};
  }
  const auto ops1 = unitary_ops(c1);
  const auto ops2 = unitary_ops(c2);

  Package pkg(c1.num_qubits());
  MatEdge miter = pkg.identity();
  pkg.inc_ref(miter);
  EcResult res;
  res.peak_nodes = pkg.node_count(miter);

  // The miter is the one root that must survive collections; every update
  // protects the new DD before releasing the old one, and the gate
  // boundary right after an update is the collection safe point.
  const auto step_miter = [&](MatEdge next) {
    pkg.inc_ref(next);
    pkg.dec_ref(miter);
    miter = next;
    pkg.maybe_collect_garbage();
  };

  // Keep the root weight's magnitude near 1 by factoring powers of two
  // into an external exponent (exact in floating point, so this is
  // lossless). Without it a long one-sided stretch — e.g. the first half
  // of a wide c.c_dagger miter — drives the global scalar toward the
  // complex table's absolute tolerance, where distinct small weights
  // (2^-n/2 vs 2^-(n+1)/2) unify and corrupt the product; that starts at
  // 63 qubits for Clifford amplitudes.
  std::int64_t exp2_scale = 0;  // true miter = stored miter * 2^exp2_scale
  const auto rescale_root = [&] {
    const Complex w = pkg.ctab().get(miter.weight);
    const double mag = std::abs(w);
    if (mag > 0.0 && (mag < 0.25 || mag > 4.0)) {
      const auto k = static_cast<int>(std::lround(std::log2(mag)));
      const MatEdge scaled{miter.node,
                           pkg.ctab().lookup(w * std::ldexp(1.0, -k))};
      step_miter(scaled);
      exp2_scale += k;
    }
  };

  std::size_t i = 0;  // next gate of c1 (applied from the left)
  std::size_t j = 0;  // next gate of c2^dagger (applied from the right)
  const auto apply_left = [&] {
    guard::check_deadline();
    step_miter(pkg.multiply(pkg.gate_dd(ops1[i]), miter));
    rescale_root();
    ++i;
    ++res.gates_applied;
    res.peak_nodes = std::max(res.peak_nodes, pkg.node_count(miter));
  };
  const auto apply_right = [&] {
    guard::check_deadline();
    // conjugate_transpose, not Operation::adjoint(): the structural
    // adjoint of a half-turn rotation wraps -pi back to +pi (a sign the
    // controlled block observes), while the DD adjoint is always exact.
    step_miter(
        pkg.multiply(miter, pkg.conjugate_transpose(pkg.gate_dd(ops2[j]))));
    rescale_root();
    ++j;
    ++res.gates_applied;
    res.peak_nodes = std::max(res.peak_nodes, pkg.node_count(miter));
  };

  if (strategy == EcStrategy::Sequential) {
    while (i < ops1.size()) {
      apply_left();
    }
    while (j < ops2.size()) {
      apply_right();
    }
  } else {
    // Proportional alternation: advance the side that is behind its share.
    while (i < ops1.size() || j < ops2.size()) {
      const double share1 =
          ops1.empty() ? 1.0
                       : static_cast<double>(i) /
                             static_cast<double>(ops1.size());
      const double share2 =
          ops2.empty() ? 1.0
                       : static_cast<double>(j) /
                             static_cast<double>(ops2.size());
      if (j >= ops2.size() || (i < ops1.size() && share1 <= share2)) {
        apply_left();
      } else {
        apply_right();
      }
    }
  }
  if (exp2_scale == 0) {
    res.equivalent = pkg.is_identity_up_to_global_phase(miter);
  } else {
    // Fold the external exponent back in before the global-phase test:
    // the true root weight is the stored one times 2^exp2_scale.
    const double true_mag = std::abs(pkg.ctab().get(miter.weight)) *
                            std::exp2(static_cast<double>(exp2_scale));
    res.equivalent = miter.node == pkg.identity().node &&
                     std::abs(true_mag - 1.0) < 1e-6;
  }
  pkg.dec_ref(miter);
  return res;
}

EcResult check_equivalence_dd_simulative(const ir::Circuit& c1,
                                         const ir::Circuit& c2,
                                         std::size_t num_stimuli,
                                         std::uint64_t seed) {
  if (c1.num_qubits() != c2.num_qubits()) {
    return {false, 0, 0, "width mismatch"};
  }
  const auto ops1 = unitary_ops(c1);
  const auto ops2 = unitary_ops(c2);
  const std::size_t n = c1.num_qubits();

  Package pkg(n);
  Rng rng(seed);
  EcResult res;
  res.equivalent = true;
  const std::uint64_t dim_mask =
      n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
  for (std::size_t s = 0; s < num_stimuli; ++s) {
    // Random computational-basis stimulus (state 0 first, then random).
    const std::uint64_t stimulus =
        s == 0 ? 0
               : (rng.index(~std::uint64_t{0}) & dim_mask);
    VecEdge v1 = pkg.basis_state(stimulus);
    VecEdge v2 = v1;
    // Both runs' roots stay protected for the whole stimulus (they share
    // the basis-state node initially, and v2 must survive the gates-of-c1
    // loop's collections).
    pkg.inc_ref(v1);
    pkg.inc_ref(v2);
    const auto step = [&](VecEdge& root, VecEdge next) {
      pkg.inc_ref(next);
      pkg.dec_ref(root);
      root = next;
      pkg.maybe_collect_garbage();
    };
    for (const auto& op : ops1) {
      guard::check_deadline();
      step(v1, pkg.multiply(pkg.gate_dd(op), v1));
      res.peak_nodes = std::max(res.peak_nodes, pkg.node_count(v1));
      ++res.gates_applied;
    }
    for (const auto& op : ops2) {
      guard::check_deadline();
      step(v2, pkg.multiply(pkg.gate_dd(op), v2));
      res.peak_nodes = std::max(res.peak_nodes, pkg.node_count(v2));
      ++res.gates_applied;
    }
    const double fidelity = std::norm(pkg.inner_product(v1, v2));
    pkg.dec_ref(v1);
    pkg.dec_ref(v2);
    if (fidelity < 1.0 - 1e-9) {
      res.equivalent = false;
      res.note = "counterexample stimulus " + std::to_string(stimulus);
      return res;
    }
  }
  res.note = "passed " + std::to_string(num_stimuli) + " stimuli";
  return res;
}

}  // namespace qdt::dd
