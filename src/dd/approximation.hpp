// Approximate DD simulation [12] ("as accurate as needed, as efficient as
// possible"): deliberately discard low-contribution parts of the state DD,
// trading a bounded fidelity loss for (often dramatic) node-count
// reductions. The discarded weight is tracked so the caller always knows
// the exact fidelity of the approximation.
#pragma once

#include <cstddef>

#include "dd/package.hpp"

namespace qdt::dd {

struct ApproxResult {
  VecEdge state;
  /// Squared overlap |<approx|exact>|^2 of the (renormalized) approximated
  /// state with the input state.
  double fidelity = 1.0;
  std::size_t nodes_before = 0;
  std::size_t nodes_after = 0;
  std::size_t edges_removed = 0;
};

/// Remove the lowest-contribution edges of the state DD until the removed
/// probability mass reaches `budget` (e.g. 0.02 allows a fidelity of
/// ~0.98), then renormalize. Contribution of an edge = the probability mass
/// of all basis states whose paths run through it.
ApproxResult approximate(Package& pkg, VecEdge state, double budget);

}  // namespace qdt::dd
