#include "dd/export_dot.hpp"

#include <cmath>
#include <sstream>
#include <unordered_map>

namespace qdt::dd {

namespace {

std::string weight_label(const Complex& w) {
  std::ostringstream os;
  os.precision(4);
  if (approx_zero(w.imag())) {
    os << w.real();
  } else if (approx_zero(w.real())) {
    os << w.imag() << "i";
  } else {
    os << w.real() << (w.imag() >= 0 ? "+" : "") << w.imag() << "i";
  }
  return os.str();
}

template <std::size_t N>
void emit(const Package& pkg, const Node<N>* node, std::ostringstream& os,
          std::unordered_map<const Node<N>*, std::size_t>& ids,
          std::size_t& stub_counter) {
  if (node == nullptr || ids.contains(node)) {
    return;
  }
  const std::size_t id = ids.size();
  ids.emplace(node, id);
  // The refcount in the label makes GC liveness visible in the rendered
  // diagram (ref=0 means the node is collectable at the next safe point).
  os << "  n" << id << " [label=\"q" << node->var << " ref=" << node->ref
     << "\", shape=circle];\n";
  for (std::size_t i = 0; i < N; ++i) {
    const auto& e = node->succ[i];
    if (e.is_zero()) {
      const std::size_t sid = stub_counter++;
      os << "  z" << sid
         << " [label=\"0\", shape=none, fontsize=10];\n";
      os << "  n" << id << " -> z" << sid << " [style=dotted, label=\"" << i
         << "\"];\n";
      continue;
    }
    emit(pkg, e.node, os, ids, stub_counter);
    os << "  n" << id << " -> ";
    if (e.is_terminal()) {
      os << "t";
    } else {
      os << "n" << ids.at(e.node);
    }
    os << " [label=\"" << i;
    const Complex w = pkg.ctab().get(e.weight);
    if (!approx_one(w)) {
      os << ": " << weight_label(w);
    }
    os << "\"];\n";
  }
}

template <std::size_t N>
std::string to_dot_impl(const Package& pkg, Edge<N> root,
                        const std::string& name) {
  std::ostringstream os;
  os << "digraph \"" << name << "\" {\n";
  os << "  rankdir=TB;\n";
  os << "  t [label=\"1\", shape=box];\n";
  std::unordered_map<const Node<N>*, std::size_t> ids;
  std::size_t stub_counter = 0;
  emit(pkg, root.node, os, ids, stub_counter);
  // Root edge with its weight.
  os << "  root [shape=point];\n";
  os << "  root -> ";
  if (root.is_terminal()) {
    os << "t";
  } else {
    os << "n" << ids.at(root.node);
  }
  os << " [label=\"" << weight_label(pkg.ctab().get(root.weight))
     << "\"];\n";
  os << "}\n";
  return os.str();
}

}  // namespace

std::string to_dot(const Package& pkg, VecEdge root, const std::string& name) {
  return to_dot_impl(pkg, root, name);
}

std::string to_dot(const Package& pkg, MatEdge root, const std::string& name) {
  return to_dot_impl(pkg, root, name);
}

}  // namespace qdt::dd
