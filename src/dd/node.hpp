// Decision-diagram nodes and edges (Section III).
//
// A vector DD node has two successors (the q=0 and q=1 halves of the state
// vector); a matrix DD node has four (the quadrants of the operator). Edges
// carry an interned complex weight; specific amplitudes/entries are
// reconstructed by multiplying the weights along a path (paper, Example 2).
//
// Structural invariants maintained by the package:
//  * quasi-reduced form: a nonzero edge entering level v points to a node
//    with var == v; a zero edge points directly to the terminal,
//  * normalized nodes: the largest-magnitude outgoing weight is 1, so equal
//    subvectors (up to a factor) share one node,
//  * hash-consing: makeNode returns the unique node for its children.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "dd/complex_table.hpp"

namespace qdt::dd {

template <std::size_t N>
struct Node;

/// Edge to a node (or to the terminal when `node == nullptr`), weighted by
/// an interned complex factor.
template <std::size_t N>
struct Edge {
  const Node<N>* node = nullptr;
  ComplexTable::Index weight = ComplexTable::kZero;

  bool is_terminal() const { return node == nullptr; }
  bool is_zero() const { return weight == ComplexTable::kZero; }

  bool operator==(const Edge&) const = default;

  /// The canonical zero edge (terminal, weight 0).
  static Edge zero() { return Edge{nullptr, ComplexTable::kZero}; }
  /// The terminal edge with weight 1.
  static Edge one() { return Edge{nullptr, ComplexTable::kOne}; }
};

template <std::size_t N>
struct Node {
  std::uint32_t var = 0;  // qubit level; 0 is the bottom-most
  /// Reference count for mark-free garbage collection (arXiv:2108.07027):
  /// the number of root edges and referenced parents pointing here. Mutable
  /// because nodes live as unique-table keys and canonical storage entries —
  /// identity (var + succ) never changes after interning, but the count
  /// does. Saturates at UINT32_MAX, which pins the node forever. Excluded
  /// from operator== and NodeHash: two structurally equal nodes are the
  /// same node regardless of how many roots hold them. Placed in the
  /// alignment hole after `var` so carrying it is size-free (40/72-byte
  /// nodes, same as without refcounts — they are unique-table keys, so
  /// their size is a cache-locality lever).
  mutable std::uint32_t ref = 0;
  std::array<Edge<N>, N> succ{};

  bool operator==(const Node& o) const {
    return var == o.var && succ == o.succ;
  }
};

using VecEdge = Edge<2>;
using MatEdge = Edge<4>;
using VecNode = Node<2>;
using MatNode = Node<4>;

template <std::size_t N>
struct NodeHash {
  std::size_t operator()(const Node<N>& n) const {
    std::size_t h = std::hash<std::uint32_t>{}(n.var);
    for (const auto& e : n.succ) {
      h = h * 0x100000001B3ULL ^
          std::hash<const void*>{}(static_cast<const void*>(e.node));
      h = h * 0x100000001B3ULL ^ std::hash<std::uint32_t>{}(e.weight);
    }
    return h;
  }
};

}  // namespace qdt::dd
