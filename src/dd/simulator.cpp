#include "dd/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "guard/budget.hpp"
#include "trace/trace.hpp"

namespace qdt::dd {

std::vector<std::pair<ir::Qubit, bool>> DDSimulator::run(
    const ir::Circuit& circuit) {
  if (circuit.num_qubits() != pkg_->num_qubits()) {
    throw std::invalid_argument("DDSimulator::run: width mismatch");
  }
  trace::Span span("qdt.dd.sim.run");
  span.attr("backend", "decision-diagram")
      .attr("qubits", static_cast<std::uint64_t>(circuit.num_qubits()))
      .attr("gates", static_cast<std::uint64_t>(circuit.ops().size()));
  std::vector<std::pair<ir::Qubit, bool>> record;
  node_trace_.clear();
  for (const auto& op : circuit.ops()) {
    guard::check_deadline();
    // Safe point: state_ is the only root and it is ref-protected, so an
    // armed collection (table fill / pressure) can run between gates.
    pkg_->maybe_collect_garbage();
    if (op.is_barrier()) {
      continue;
    }
    if (op.is_measurement()) {
      for (const auto q : op.targets()) {
        record.emplace_back(q, measure(q));
      }
      continue;
    }
    if (op.is_reset()) {
      for (const auto q : op.targets()) {
        if (measure(q)) {
          apply(ir::Operation{ir::GateKind::X, q});
        }
      }
      continue;
    }
    apply(op);
    for (const auto& ch : noise_.gate_noise) {
      for (const auto q : op.qubits()) {
        apply_noise_trajectory(q, ch);
      }
    }
    node_trace_.push_back(state_node_count());
  }
  const PackageStats stats = pkg_->stats();
  span.attr("state_nodes", static_cast<std::uint64_t>(state_node_count()))
      .attr("unique_vec_nodes",
            static_cast<std::uint64_t>(stats.unique_vec_nodes))
      .attr("unique_mat_nodes",
            static_cast<std::uint64_t>(stats.unique_mat_nodes))
      .attr("complex_values",
            static_cast<std::uint64_t>(stats.complex_values))
      .attr("cache_hits", static_cast<std::uint64_t>(stats.cache_hits))
      .attr("cache_lookups",
            static_cast<std::uint64_t>(stats.cache_lookups))
      .attr("gc_runs", static_cast<std::uint64_t>(stats.gc_runs))
      .attr("gc_freed_nodes",
            static_cast<std::uint64_t>(stats.gc_freed_nodes));
  return record;
}

void DDSimulator::apply(const ir::Operation& op) {
  // Swap-like permutations are applied as CX/CZ sequences: as a single
  // matrix DD they merge phase chains whose additions defeat the compute
  // cache, costing up to 2^n time on phase-rich (e.g. QFT) states even
  // though the result is tiny.
  if (op.controls().empty() && op.targets().size() == 2) {
    const ir::Qubit a = op.targets()[0];
    const ir::Qubit b = op.targets()[1];
    switch (op.kind()) {
      case ir::GateKind::Swap:
        apply(ir::Operation{ir::GateKind::X, {b}, {a}});
        apply(ir::Operation{ir::GateKind::X, {a}, {b}});
        apply(ir::Operation{ir::GateKind::X, {b}, {a}});
        return;
      case ir::GateKind::ISwap:
        // iSWAP = (S x S) CZ SWAP, applied right-to-left.
        apply(ir::Operation{ir::GateKind::Swap, {a, b}});
        apply(ir::Operation{ir::GateKind::Z, {b}, {a}});
        apply(ir::Operation{ir::GateKind::S, a});
        apply(ir::Operation{ir::GateKind::S, b});
        return;
      case ir::GateKind::ISwapDg:
        apply(ir::Operation{ir::GateKind::Sdg, a});
        apply(ir::Operation{ir::GateKind::Sdg, b});
        apply(ir::Operation{ir::GateKind::Z, {b}, {a}});
        apply(ir::Operation{ir::GateKind::Swap, {a, b}});
        return;
      default:
        break;
    }
  }
  set_state(pkg_->multiply(pkg_->gate_dd(op), state_));
}

bool DDSimulator::measure(ir::Qubit q) {
  // Same clamp as Statevector::measure: prob_one is a big floating-point
  // sum, and a value a hair above 1.0 would make the |0> branch's keep
  // probability negative — the state would be silently left unnormalized
  // (or zeroed by the projection).
  const double p1 = std::clamp(pkg_->prob_one(state_, q), 0.0, 1.0);
  const bool outcome = rng_.uniform() < p1;
  const double keep = outcome ? p1 : 1.0 - p1;
  if (!(keep > 0.0)) {
    throw Error::internal(
        "DDSimulator::measure: selected outcome " +
        std::to_string(static_cast<int>(outcome)) + " on qubit " +
        std::to_string(q) + " has non-positive probability " +
        std::to_string(keep));
  }
  set_state(pkg_->project(state_, q, outcome));
  scale_state(1.0 / std::sqrt(keep));
  return outcome;
}

std::map<std::uint64_t, std::size_t> DDSimulator::sample_counts(
    std::size_t shots) {
  std::map<std::uint64_t, std::size_t> counts;
  for (std::size_t s = 0; s < shots; ++s) {
    ++counts[pkg_->sample(state_, rng_)];
  }
  return counts;
}

void DDSimulator::apply_noise_trajectory(ir::Qubit q,
                                         const arrays::KrausChannel& ch) {
  std::vector<VecEdge> branches;
  std::vector<double> weights;
  branches.reserve(ch.ops.size());
  for (const auto& k : ch.ops) {
    const MatEdge kdd = pkg_->single_qubit_dd(k, q);
    VecEdge branch = pkg_->multiply(kdd, state_);
    weights.push_back(pkg_->norm2(branch));
    branches.push_back(branch);
  }
  double r = rng_.uniform();
  std::size_t pick = weights.size() - 1;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) {
      pick = i;
      break;
    }
  }
  set_state(branches[pick]);
  if (weights[pick] > 0.0) {
    scale_state(1.0 / std::sqrt(weights[pick]));
  }
}

void DDSimulator::scale_state(double factor) {
  set_state(VecEdge{
      state_.node, pkg_->ctab().mul(state_.weight, pkg_->ctab().lookup(
                                                       Complex{factor, 0.0}))});
}

}  // namespace qdt::dd
