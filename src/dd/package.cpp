#include "dd/package.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "common/bitops.hpp"
#include "guard/budget.hpp"
#include "obs/obs.hpp"

namespace qdt::dd {

namespace {

// Registry handles are resolved once at static-init time so the hot paths
// below pay only a relaxed atomic increment (nothing at all in no-op
// builds).
obs::Counter& g_ut_hits = obs::counter("qdt.dd.unique_table.hits");
obs::Counter& g_ut_misses = obs::counter("qdt.dd.unique_table.misses");
obs::Counter& g_ct_hits = obs::counter("qdt.dd.compute_table.hits");
obs::Counter& g_ct_misses = obs::counter("qdt.dd.compute_table.misses");
obs::Counter& g_node_allocs = obs::counter("qdt.dd.package.node_allocs");
obs::Counter& g_cache_clears = obs::counter("qdt.dd.package.cache_clears");

/// Budget checkpoint after every node allocation. The node cap is exact;
/// the byte/deadline checks are sampled (every 64 allocations) because
/// they cost a clock read / a multiply and allocations are the DD hot
/// path. ~96 bytes/node covers the node itself plus its unique-table and
/// complex-table footprint.
void check_node_budget(std::size_t vec_nodes, std::size_t mat_nodes,
                       std::size_t complex_values) {
  const std::size_t total = vec_nodes + mat_nodes;
  guard::check_dd_nodes(total);
  if ((total & 0x3F) == 0) {
    const std::size_t bytes = total * 96 + complex_values * sizeof(Complex);
    static obs::Gauge& g_bytes_peak = obs::gauge("qdt.dd.package.bytes_peak");
    g_bytes_peak.update_max(static_cast<std::int64_t>(bytes));
    guard::check_memory(bytes, "dd package");
    guard::check_deadline();
  }
}

}  // namespace

Package::Package(std::size_t num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits == 0 || num_qubits > 128) {
    throw std::invalid_argument("Package: unsupported qubit count");
  }
}

// ---------------------------------------------------------------------------
// Node construction
// ---------------------------------------------------------------------------

VecEdge Package::make_vec_node(std::uint32_t var, VecEdge e0, VecEdge e1) {
  if (e0.is_zero() && e1.is_zero()) {
    return VecEdge::zero();
  }
  // Normalize: divide by the largest-magnitude weight so that equal
  // subvectors (up to a factor) produce the identical node. Ties are broken
  // towards the lower index *within tolerance*: states with uniform
  // amplitude magnitudes (QFT outputs!) would otherwise flip the argmax on
  // rounding noise and lose all sharing. The tolerance must be relative to
  // the magnitudes — an absolute one lets a zero weight win whenever both
  // entries are below sqrt(kEps), silently zeroing a nonzero subvector.
  const double n0 = ctab_.norm2(e0.weight);
  const double n1 = ctab_.norm2(e1.weight);
  const ComplexTable::Index norm =
      n1 > n0 + kEps * std::max(n0, n1) ? e1.weight : e0.weight;
  VecNode node;
  node.var = var;
  node.succ[0] = VecEdge{e0.node, ctab_.div(e0.weight, norm)};
  node.succ[1] = VecEdge{e1.node, ctab_.div(e1.weight, norm)};
  // Canonical zero form: a zero-weight edge points at the terminal.
  for (auto& s : node.succ) {
    if (s.is_zero()) {
      s.node = nullptr;
    }
  }
  const auto it = vec_unique_.find(node);
  if (it != vec_unique_.end()) {
    g_ut_hits.add();
    return VecEdge{it->second, norm};
  }
  g_ut_misses.add();
  g_node_allocs.add();
  vec_storage_.push_back(node);
  const VecNode* stored = &vec_storage_.back();
  vec_unique_.emplace(node, stored);
  check_node_budget(vec_storage_.size(), mat_storage_.size(), ctab_.size());
  return VecEdge{stored, norm};
}

MatEdge Package::make_mat_node(std::uint32_t var,
                               std::array<MatEdge, 4> succ) {
  bool all_zero = true;
  for (const auto& e : succ) {
    all_zero = all_zero && e.is_zero();
  }
  if (all_zero) {
    return MatEdge::zero();
  }
  // Same tolerance-aware argmax as make_vec_node: first index within a
  // *relative* kEps of the maximum. Differential fuzzing found the absolute
  // form (`>= best - kEps`) collapsing nonzero nodes to the zero edge: when
  // every successor magnitude is below sqrt(kEps), a zero weight wins the
  // argmax and the division zeroes the node — an rz(pi/2^26) residual of
  // ~2e-8 vanished from a miter product, refuting a true equivalence.
  double best = 0.0;
  for (const auto& e : succ) {
    best = std::max(best, ctab_.norm2(e.weight));
  }
  std::size_t k = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (ctab_.norm2(succ[i].weight) >= best * (1.0 - kEps)) {
      k = i;
      break;
    }
  }
  const ComplexTable::Index norm = succ[k].weight;
  MatNode node;
  node.var = var;
  for (std::size_t i = 0; i < 4; ++i) {
    node.succ[i] = MatEdge{succ[i].node, ctab_.div(succ[i].weight, norm)};
    if (node.succ[i].is_zero()) {
      node.succ[i].node = nullptr;
    }
  }
  const auto it = mat_unique_.find(node);
  if (it != mat_unique_.end()) {
    g_ut_hits.add();
    return MatEdge{it->second, norm};
  }
  g_ut_misses.add();
  g_node_allocs.add();
  mat_storage_.push_back(node);
  const MatNode* stored = &mat_storage_.back();
  mat_unique_.emplace(node, stored);
  check_node_budget(vec_storage_.size(), mat_storage_.size(), ctab_.size());
  return MatEdge{stored, norm};
}

// ---------------------------------------------------------------------------
// Vector construction / readout
// ---------------------------------------------------------------------------

VecEdge Package::zero_state() { return basis_state(0); }

VecEdge Package::basis_state(std::uint64_t index) {
  VecEdge e = VecEdge::one();
  for (std::uint32_t var = 0; var < num_qubits_; ++var) {
    if (get_bit(index, var)) {
      e = make_vec_node(var, VecEdge::zero(), e);
    } else {
      e = make_vec_node(var, e, VecEdge::zero());
    }
  }
  return e;
}

VecEdge Package::from_vector(const std::vector<Complex>& amplitudes) {
  if (amplitudes.size() != (std::size_t{1} << num_qubits_)) {
    throw std::invalid_argument("from_vector: size != 2^n");
  }
  return from_vector_rec(amplitudes.data(),
                         static_cast<std::int64_t>(num_qubits_) - 1,
                         amplitudes.size());
}

VecEdge Package::from_vector_rec(const Complex* data, std::int64_t level,
                                 std::size_t len) {
  if (level < 0) {
    return VecEdge{nullptr, ctab_.lookup(data[0])};
  }
  const std::size_t half = len / 2;
  const VecEdge e0 = from_vector_rec(data, level - 1, half);
  const VecEdge e1 = from_vector_rec(data + half, level - 1, half);
  return make_vec_node(static_cast<std::uint32_t>(level), e0, e1);
}

namespace {

void to_vector_walk(const ComplexTable& ctab, VecEdge e, std::int64_t level,
                    Complex acc, std::uint64_t base,
                    std::vector<Complex>& out) {
  if (e.is_zero()) {
    return;
  }
  acc *= ctab.get(e.weight);
  if (level < 0) {
    out[base] = acc;
    return;
  }
  to_vector_walk(ctab, e.node->succ[0], level - 1, acc, base, out);
  to_vector_walk(ctab, e.node->succ[1], level - 1, acc,
                 base | (std::uint64_t{1} << level), out);
}

}  // namespace

std::vector<Complex> Package::to_vector(VecEdge e) const {
  // Dense readout is the one DD operation that re-introduces the 2^n
  // array; it must respect the byte budget like the array backend does
  // (and never shift past the word size — the package itself goes to 128
  // qubits).
  if (num_qubits_ >= 48) {
    throw Error::exhausted(Resource::Memory,
                           "dd dense readout: 2^" +
                               std::to_string(num_qubits_) +
                               " amplitudes cannot be materialized");
  }
  guard::check_memory((std::size_t{1} << num_qubits_) * sizeof(Complex),
                      "dd dense readout");
  std::vector<Complex> out(std::size_t{1} << num_qubits_, Complex{});
  to_vector_walk(ctab_, e, static_cast<std::int64_t>(num_qubits_) - 1,
                 Complex{1.0}, 0, out);
  return out;
}

Complex Package::amplitude(VecEdge e, std::uint64_t index) const {
  Complex acc{1.0};
  for (std::int64_t level = static_cast<std::int64_t>(num_qubits_) - 1;
       level >= 0; --level) {
    if (e.is_zero()) {
      return Complex{};
    }
    acc *= ctab_.get(e.weight);
    e = e.node->succ[get_bit(index, static_cast<std::size_t>(level))];
  }
  if (e.is_zero()) {
    return Complex{};
  }
  return acc * ctab_.get(e.weight);
}

// ---------------------------------------------------------------------------
// Vector operations
// ---------------------------------------------------------------------------

VecEdge Package::add(VecEdge a, VecEdge b) {
  return add_rec(a, b, static_cast<std::int64_t>(num_qubits_) - 1);
}

VecEdge Package::add_rec(VecEdge a, VecEdge b, std::int64_t level) {
  if (a.is_zero()) {
    return b;
  }
  if (b.is_zero()) {
    return a;
  }
  if (level < 0) {
    return VecEdge{nullptr, ctab_.add(a.weight, b.weight)};
  }
  if (a.node == b.node) {
    // Proportional operands collapse immediately.
    return VecEdge{a.node, ctab_.add(a.weight, b.weight)};
  }
  // Commutative: canonicalize operand order, then factor the first weight
  // out so the cache key depends only on the weight *ratio*.
  if (static_cast<const void*>(a.node) > static_cast<const void*>(b.node)) {
    std::swap(a, b);
  }
  const ComplexTable::Index ratio = ctab_.div(b.weight, a.weight);
  const AddKey<VecEdge> key{a.node, b.node, ratio};
  ++cache_lookups_;
  if (const auto it = vec_add_cache_.find(key); it != vec_add_cache_.end()) {
    ++cache_hits_;
    g_ct_hits.add();
    return VecEdge{it->second.node,
                   ctab_.mul(a.weight, it->second.weight)};
  }
  g_ct_misses.add();
  std::array<VecEdge, 2> r;
  for (std::size_t i = 0; i < 2; ++i) {
    const VecEdge ai = a.node->succ[i];
    const VecEdge bi{b.node->succ[i].node,
                     ctab_.mul(ratio, b.node->succ[i].weight)};
    r[i] = add_rec(ai, bi, level - 1);
  }
  const VecEdge unit =
      make_vec_node(static_cast<std::uint32_t>(level), r[0], r[1]);
  vec_add_cache_.emplace(key, unit);
  return VecEdge{unit.node, ctab_.mul(a.weight, unit.weight)};
}

MatEdge Package::add(MatEdge a, MatEdge b) {
  return add_rec(a, b, static_cast<std::int64_t>(num_qubits_) - 1);
}

MatEdge Package::add_rec(MatEdge a, MatEdge b, std::int64_t level) {
  if (a.is_zero()) {
    return b;
  }
  if (b.is_zero()) {
    return a;
  }
  if (level < 0) {
    return MatEdge{nullptr, ctab_.add(a.weight, b.weight)};
  }
  if (a.node == b.node) {
    return MatEdge{a.node, ctab_.add(a.weight, b.weight)};
  }
  if (static_cast<const void*>(a.node) > static_cast<const void*>(b.node)) {
    std::swap(a, b);
  }
  const ComplexTable::Index ratio = ctab_.div(b.weight, a.weight);
  const AddKey<MatEdge> key{a.node, b.node, ratio};
  ++cache_lookups_;
  if (const auto it = mat_add_cache_.find(key); it != mat_add_cache_.end()) {
    ++cache_hits_;
    g_ct_hits.add();
    return MatEdge{it->second.node,
                   ctab_.mul(a.weight, it->second.weight)};
  }
  g_ct_misses.add();
  std::array<MatEdge, 4> r;
  for (std::size_t i = 0; i < 4; ++i) {
    const MatEdge ai = a.node->succ[i];
    const MatEdge bi{b.node->succ[i].node,
                     ctab_.mul(ratio, b.node->succ[i].weight)};
    r[i] = add_rec(ai, bi, level - 1);
  }
  const MatEdge unit = make_mat_node(static_cast<std::uint32_t>(level), r);
  mat_add_cache_.emplace(key, unit);
  return MatEdge{unit.node, ctab_.mul(a.weight, unit.weight)};
}

VecEdge Package::multiply(MatEdge m, VecEdge v) {
  return mul_rec(m, v, static_cast<std::int64_t>(num_qubits_) - 1);
}

VecEdge Package::mul_rec(MatEdge a, VecEdge b, std::int64_t level) {
  if (a.is_zero() || b.is_zero()) {
    return VecEdge::zero();
  }
  if (level < 0) {
    return VecEdge{nullptr, ctab_.mul(a.weight, b.weight)};
  }
  // Top weights factor out; cache unit-weight results.
  const PairKey key{a.node, b.node};
  ++cache_lookups_;
  VecEdge unit;
  if (const auto it = mv_cache_.find(key); it != mv_cache_.end()) {
    ++cache_hits_;
    g_ct_hits.add();
    unit = it->second;
  } else {
    g_ct_misses.add();
    std::array<VecEdge, 2> r;
    for (std::size_t i = 0; i < 2; ++i) {
      VecEdge sum = VecEdge::zero();
      for (std::size_t j = 0; j < 2; ++j) {
        const VecEdge term =
            mul_rec(a.node->succ[2 * i + j], b.node->succ[j], level - 1);
        sum = add_rec(sum, term, level - 1);
      }
      r[i] = sum;
    }
    unit = make_vec_node(static_cast<std::uint32_t>(level), r[0], r[1]);
    mv_cache_.emplace(key, unit);
  }
  return VecEdge{unit.node,
                 ctab_.mul(unit.weight, ctab_.mul(a.weight, b.weight))};
}

MatEdge Package::multiply(MatEdge a, MatEdge b) {
  return mul_rec(a, b, static_cast<std::int64_t>(num_qubits_) - 1);
}

MatEdge Package::mul_rec(MatEdge a, MatEdge b, std::int64_t level) {
  if (a.is_zero() || b.is_zero()) {
    return MatEdge::zero();
  }
  if (level < 0) {
    return MatEdge{nullptr, ctab_.mul(a.weight, b.weight)};
  }
  const PairKey key{a.node, b.node};
  ++cache_lookups_;
  MatEdge unit;
  if (const auto it = mm_cache_.find(key); it != mm_cache_.end()) {
    ++cache_hits_;
    g_ct_hits.add();
    unit = it->second;
  } else {
    g_ct_misses.add();
    std::array<MatEdge, 4> r;
    for (std::size_t i = 0; i < 2; ++i) {
      for (std::size_t j = 0; j < 2; ++j) {
        MatEdge sum = MatEdge::zero();
        for (std::size_t k = 0; k < 2; ++k) {
          const MatEdge term = mul_rec(a.node->succ[2 * i + k],
                                       b.node->succ[2 * k + j], level - 1);
          sum = add_rec(sum, term, level - 1);
        }
        r[2 * i + j] = sum;
      }
    }
    unit = make_mat_node(static_cast<std::uint32_t>(level), r);
    mm_cache_.emplace(key, unit);
  }
  return MatEdge{unit.node,
                 ctab_.mul(unit.weight, ctab_.mul(a.weight, b.weight))};
}

Complex Package::inner_product(VecEdge a, VecEdge b) {
  return ip_rec(a, b, static_cast<std::int64_t>(num_qubits_) - 1);
}

Complex Package::ip_rec(VecEdge a, VecEdge b, std::int64_t level) {
  if (a.is_zero() || b.is_zero()) {
    return Complex{};
  }
  const Complex scale =
      std::conj(ctab_.get(a.weight)) * ctab_.get(b.weight);
  if (level < 0) {
    return scale;
  }
  const PairKey key{a.node, b.node};
  ++cache_lookups_;
  if (const auto it = ip_cache_.find(key); it != ip_cache_.end()) {
    ++cache_hits_;
    g_ct_hits.add();
    return scale * it->second;
  }
  g_ct_misses.add();
  Complex sum{};
  for (std::size_t i = 0; i < 2; ++i) {
    sum += ip_rec(a.node->succ[i], b.node->succ[i], level - 1);
  }
  ip_cache_.emplace(key, sum);
  return scale * sum;
}

double Package::norm2(VecEdge e) { return inner_product(e, e).real(); }

VecEdge Package::project(VecEdge e, ir::Qubit q, bool bit) {
  std::unordered_map<const VecNode*, VecEdge> memo;
  return project_rec(e, q, bit, memo);
}

VecEdge Package::project_rec(
    VecEdge e, ir::Qubit q, bool bit,
    std::unordered_map<const VecNode*, VecEdge>& memo) {
  if (e.is_zero()) {
    return VecEdge::zero();
  }
  const VecNode* n = e.node;
  if (n == nullptr || n->var < q) {
    // Entire subtree below the projected qubit: unchanged.
    return e;
  }
  if (const auto it = memo.find(n); it != memo.end()) {
    return VecEdge{it->second.node, ctab_.mul(e.weight, it->second.weight)};
  }
  VecEdge unit;
  if (n->var == q) {
    const VecEdge kept = n->succ[bit ? 1 : 0];
    unit = make_vec_node(n->var, bit ? VecEdge::zero() : kept,
                         bit ? kept : VecEdge::zero());
  } else {
    const VecEdge p0 = project_rec(n->succ[0], q, bit, memo);
    const VecEdge p1 = project_rec(n->succ[1], q, bit, memo);
    unit = make_vec_node(n->var, p0, p1);
  }
  memo.emplace(n, unit);
  return VecEdge{unit.node, ctab_.mul(e.weight, unit.weight)};
}

double Package::prob_one(VecEdge e, ir::Qubit q) {
  const double total = norm2(e);
  if (total <= 0.0) {
    return 0.0;
  }
  return norm2(project(e, q, true)) / total;
}

double Package::subtree_norm2(
    const VecNode* n, std::unordered_map<const VecNode*, double>& memo) {
  if (n == nullptr) {
    return 1.0;
  }
  if (const auto it = memo.find(n); it != memo.end()) {
    return it->second;
  }
  double s = 0.0;
  for (const auto& e : n->succ) {
    if (!e.is_zero()) {
      s += ctab_.norm2(e.weight) * subtree_norm2(e.node, memo);
    }
  }
  memo.emplace(n, s);
  return s;
}

std::uint64_t Package::sample(VecEdge e, Rng& rng) {
  if (e.is_zero()) {
    throw std::logic_error("sample: zero state");
  }
  std::unordered_map<const VecNode*, double> memo;
  std::uint64_t result = 0;
  VecEdge cur = e;
  while (!cur.is_terminal()) {
    const VecNode* n = cur.node;
    const double w0 = cur.node->succ[0].is_zero()
                          ? 0.0
                          : ctab_.norm2(n->succ[0].weight) *
                                subtree_norm2(n->succ[0].node, memo);
    const double w1 = cur.node->succ[1].is_zero()
                          ? 0.0
                          : ctab_.norm2(n->succ[1].weight) *
                                subtree_norm2(n->succ[1].node, memo);
    const double total = w0 + w1;
    const bool bit = total > 0.0 && rng.uniform() * total >= w0;
    if (bit) {
      result = set_bit(result, n->var, true);
    }
    cur = n->succ[bit ? 1 : 0];
  }
  return result;
}

// ---------------------------------------------------------------------------
// Matrix construction
// ---------------------------------------------------------------------------

MatEdge Package::identity() {
  MatEdge e = MatEdge::one();
  for (std::uint32_t var = 0; var < num_qubits_; ++var) {
    e = make_mat_node(var, {e, MatEdge::zero(), MatEdge::zero(), e});
  }
  return e;
}

MatEdge Package::single_qubit_dd(const Mat2& m, ir::Qubit target,
                                 const std::vector<ir::Qubit>& controls) {
  if (target >= num_qubits_) {
    throw std::out_of_range("single_qubit_dd: target out of range");
  }
  std::vector<bool> is_control(num_qubits_, false);
  for (const auto c : controls) {
    if (c >= num_qubits_ || c == target) {
      throw std::out_of_range("single_qubit_dd: bad control");
    }
    is_control[c] = true;
  }
  // Entry edges for the four matrix elements, extended upward level by
  // level; id_below tracks the identity on all processed levels.
  std::array<MatEdge, 4> entry;
  for (std::size_t k = 0; k < 4; ++k) {
    entry[k] = MatEdge{nullptr, ctab_.lookup(m.e[k])};
  }
  MatEdge id_below = MatEdge::one();
  MatEdge result{};
  bool passed_target = false;
  const MatEdge zero = MatEdge::zero();
  for (std::uint32_t v = 0; v < num_qubits_; ++v) {
    if (v == target) {
      // Matrix child order is (row<<1)|col of this level's bits; entry k
      // of Mat2 is m(k>>1, k&1) — identical layout.
      result = make_mat_node(v, entry);
      passed_target = true;
    } else if (is_control[v]) {
      if (!passed_target) {
        for (std::size_t k = 0; k < 4; ++k) {
          const bool diag = k == 0 || k == 3;
          entry[k] = make_mat_node(
              v, {diag ? id_below : zero, zero, zero, entry[k]});
        }
      } else {
        result = make_mat_node(v, {id_below, zero, zero, result});
      }
    } else {
      if (!passed_target) {
        for (std::size_t k = 0; k < 4; ++k) {
          entry[k] = make_mat_node(v, {entry[k], zero, zero, entry[k]});
        }
      } else {
        result = make_mat_node(v, {result, zero, zero, result});
      }
    }
    id_below = make_mat_node(v, {id_below, zero, zero, id_below});
  }
  return result;
}

MatEdge Package::gate_dd(const ir::Operation& op) {
  if (!op.is_unitary()) {
    throw std::logic_error("gate_dd: non-unitary operation " + op.str());
  }
  if (op.targets().size() == 1) {
    return single_qubit_dd(op.matrix2(), op.targets()[0], op.controls());
  }
  const ir::Qubit a = op.targets()[0];
  const ir::Qubit b = op.targets()[1];
  const Mat2 x_mat = ir::gate_matrix2(ir::GateKind::X, {});
  const Mat2 s_mat = ir::gate_matrix2(ir::GateKind::S, {});
  const Mat2 z_mat = ir::gate_matrix2(ir::GateKind::Z, {});
  const Mat2 h_mat = ir::gate_matrix2(ir::GateKind::H, {});
  switch (op.kind()) {
    case ir::GateKind::Swap: {
      // (C)SWAP = CX(b,a) . (controls+{a})-X(b) . CX(b,a).
      const MatEdge outer = single_qubit_dd(x_mat, a, {b});
      std::vector<ir::Qubit> inner_ctrls = op.controls();
      inner_ctrls.push_back(a);
      const MatEdge inner = single_qubit_dd(x_mat, b, inner_ctrls);
      return multiply(outer, multiply(inner, outer));
    }
    case ir::GateKind::ISwap:
    case ir::GateKind::ISwapDg: {
      if (!op.controls().empty()) {
        throw std::invalid_argument("gate_dd: controlled iswap unsupported");
      }
      const MatEdge sw =
          gate_dd(ir::Operation{ir::GateKind::Swap, {a, b}});
      const MatEdge cz = single_qubit_dd(z_mat, b, {a});
      const MatEdge sa = single_qubit_dd(s_mat, a, {});
      const MatEdge sb = single_qubit_dd(s_mat, b, {});
      const MatEdge iswap = multiply(sa, multiply(sb, multiply(cz, sw)));
      return op.kind() == ir::GateKind::ISwap ? iswap
                                              : conjugate_transpose(iswap);
    }
    case ir::GateKind::RZZ: {
      if (!op.controls().empty()) {
        throw std::invalid_argument("gate_dd: controlled rzz unsupported");
      }
      const MatEdge cx = single_qubit_dd(x_mat, b, {a});
      const Mat2 rz = ir::gate_matrix2(ir::GateKind::RZ, op.params());
      const MatEdge rzb = single_qubit_dd(rz, b, {});
      return multiply(cx, multiply(rzb, cx));
    }
    case ir::GateKind::RXX: {
      if (!op.controls().empty()) {
        throw std::invalid_argument("gate_dd: controlled rxx unsupported");
      }
      const MatEdge ha = single_qubit_dd(h_mat, a, {});
      const MatEdge hb = single_qubit_dd(h_mat, b, {});
      const MatEdge hh = multiply(ha, hb);
      const MatEdge rzz = gate_dd(
          ir::Operation{ir::GateKind::RZZ, {a, b}, {}, op.params()});
      return multiply(hh, multiply(rzz, hh));
    }
    default:
      throw std::logic_error("gate_dd: unhandled two-qubit kind " +
                             ir::gate_name(op.kind()));
  }
}

MatEdge Package::from_matrix(const std::vector<Complex>& row_major) {
  const std::size_t dim = std::size_t{1} << num_qubits_;
  if (row_major.size() != dim * dim) {
    throw std::invalid_argument("from_matrix: size != 4^n");
  }
  return from_matrix_rec(row_major, dim, 0, 0,
                         static_cast<std::int64_t>(num_qubits_) - 1);
}

MatEdge Package::from_matrix_rec(const std::vector<Complex>& m,
                                 std::size_t dim, std::size_t row,
                                 std::size_t col, std::int64_t level) {
  if (level < 0) {
    return MatEdge{nullptr, ctab_.lookup(m[row * dim + col])};
  }
  const std::size_t half = std::size_t{1} << level;
  std::array<MatEdge, 4> succ;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      succ[2 * i + j] =
          from_matrix_rec(m, dim, row + i * half, col + j * half, level - 1);
    }
  }
  return make_mat_node(static_cast<std::uint32_t>(level), succ);
}

namespace {

void to_matrix_walk(const ComplexTable& ctab, MatEdge e, std::int64_t level,
                    Complex acc, std::size_t row, std::size_t col,
                    std::size_t dim, std::vector<Complex>& out) {
  if (e.is_zero()) {
    return;
  }
  acc *= ctab.get(e.weight);
  if (level < 0) {
    out[row * dim + col] = acc;
    return;
  }
  const std::size_t half = std::size_t{1} << level;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      to_matrix_walk(ctab, e.node->succ[2 * i + j], level - 1, acc,
                     row + i * half, col + j * half, dim, out);
    }
  }
}

}  // namespace

std::vector<Complex> Package::to_matrix(MatEdge e) const {
  const std::size_t dim = std::size_t{1} << num_qubits_;
  std::vector<Complex> out(dim * dim, Complex{});
  to_matrix_walk(ctab_, e, static_cast<std::int64_t>(num_qubits_) - 1,
                 Complex{1.0}, 0, 0, dim, out);
  return out;
}

MatEdge Package::conjugate_transpose(MatEdge e) {
  const MatEdge unit = ct_rec(MatEdge{e.node, ComplexTable::kOne});
  return MatEdge{unit.node,
                 ctab_.mul(unit.weight, ctab_.conj(e.weight))};
}

MatEdge Package::ct_rec(MatEdge e) {
  if (e.is_zero()) {
    return MatEdge::zero();
  }
  if (e.is_terminal()) {
    return MatEdge{nullptr, ctab_.conj(e.weight)};
  }
  if (const auto it = ct_cache_.find(e.node); it != ct_cache_.end()) {
    return MatEdge{it->second.node,
                   ctab_.mul(ctab_.conj(e.weight), it->second.weight)};
  }
  const MatNode* n = e.node;
  // Transpose swaps the off-diagonal quadrants; conjugation recurses.
  std::array<MatEdge, 4> succ;
  succ[0] = ct_rec(n->succ[0]);
  succ[1] = ct_rec(n->succ[2]);
  succ[2] = ct_rec(n->succ[1]);
  succ[3] = ct_rec(n->succ[3]);
  const MatEdge unit = make_mat_node(n->var, succ);
  ct_cache_.emplace(n, unit);
  return MatEdge{unit.node, ctab_.mul(ctab_.conj(e.weight), unit.weight)};
}

Complex Package::trace(MatEdge e) {
  std::unordered_map<const MatNode*, Complex> memo;
  return trace_rec(e, static_cast<std::int64_t>(num_qubits_) - 1, memo);
}

Complex Package::trace_rec(
    MatEdge e, std::int64_t level,
    std::unordered_map<const MatNode*, Complex>& memo) {
  if (e.is_zero()) {
    return Complex{};
  }
  const Complex w = ctab_.get(e.weight);
  if (level < 0) {
    return w;
  }
  if (const auto it = memo.find(e.node); it != memo.end()) {
    return w * it->second;
  }
  const Complex sub = trace_rec(e.node->succ[0], level - 1, memo) +
                      trace_rec(e.node->succ[3], level - 1, memo);
  memo.emplace(e.node, sub);
  return w * sub;
}

bool Package::is_identity(MatEdge e) {
  const MatEdge id = identity();
  return e.node == id.node && ctab_.is_one(e.weight);
}

bool Package::is_identity_up_to_global_phase(MatEdge e) {
  const MatEdge id = identity();
  return e.node == id.node &&
         approx_equal(std::abs(ctab_.get(e.weight)), 1.0);
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

namespace {

template <std::size_t N>
void count_nodes(const Node<N>* n,
                 std::unordered_set<const Node<N>*>& seen) {
  if (n == nullptr || seen.contains(n)) {
    return;
  }
  seen.insert(n);
  for (const auto& e : n->succ) {
    count_nodes(e.node, seen);
  }
}

}  // namespace

std::size_t Package::node_count(VecEdge e) const {
  std::unordered_set<const VecNode*> seen;
  count_nodes(e.node, seen);
  return seen.size();
}

std::size_t Package::node_count(MatEdge e) const {
  std::unordered_set<const MatNode*> seen;
  count_nodes(e.node, seen);
  return seen.size();
}

PackageStats Package::stats() const {
  PackageStats s;
  s.unique_vec_nodes = vec_storage_.size();
  s.unique_mat_nodes = mat_storage_.size();
  s.complex_values = ctab_.size();
  s.cache_hits = cache_hits_;
  s.cache_lookups = cache_lookups_;
  return s;
}

void Package::clear_caches() {
  g_cache_clears.add();
  vec_add_cache_.clear();
  mat_add_cache_.clear();
  mv_cache_.clear();
  mm_cache_.clear();
  ip_cache_.clear();
  ct_cache_.clear();
}

}  // namespace qdt::dd
