#include "dd/package.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <unordered_set>

#include "common/bitops.hpp"
#include "guard/budget.hpp"
#include "obs/obs.hpp"
#include "trace/trace.hpp"

namespace qdt::dd {

namespace {

// Registry handles are resolved once at static-init time so the hot paths
// below pay only a relaxed atomic increment (nothing at all in no-op
// builds).
obs::Counter& g_ut_hits = obs::counter("qdt.dd.unique_table.hits");
obs::Counter& g_ut_misses = obs::counter("qdt.dd.unique_table.misses");
obs::Counter& g_ct_hits = obs::counter("qdt.dd.compute_table.hits");
obs::Counter& g_ct_misses = obs::counter("qdt.dd.compute_table.misses");
obs::Counter& g_node_allocs = obs::counter("qdt.dd.package.node_allocs");
obs::Counter& g_cache_clears = obs::counter("qdt.dd.package.cache_clears");
obs::Counter& g_gc_runs = obs::counter("qdt.dd.gc.runs");
obs::Counter& g_gc_freed_nodes = obs::counter("qdt.dd.gc.freed_nodes");
obs::Counter& g_gc_freed_weights = obs::counter("qdt.dd.gc.freed_weights");
obs::Gauge& g_gc_live = obs::gauge("qdt.dd.gc.live_nodes");
obs::Counter& g_cache_evictions = obs::counter("qdt.dd.cache.evictions");
obs::Gauge& g_bytes_peak = obs::gauge("qdt.dd.package.bytes_peak");

constexpr std::uint32_t kRefSaturated =
    std::numeric_limits<std::uint32_t>::max();

// Approximate per-entry byte costs, monotone in the real footprint (which
// is all a bound or a peak gauge needs): a live node pays for its storage
// slab slot plus its unique-table entry (key copy, pointer, bucket); an
// interned value pays for its slot, its bucket index, and the parallel
// pin/dead bookkeeping; a cache entry for key + value + bucket.
constexpr std::size_t kVecNodeBytes = 2 * sizeof(VecNode) + 32;
constexpr std::size_t kMatNodeBytes = 2 * sizeof(MatNode) + 32;
constexpr std::size_t kWeightBytes = sizeof(Complex) + 24;
constexpr std::size_t kCacheEntryBytes = 48;

// Process-wide default config. QDT_DD_TABLE_MB is folded in exactly once,
// on the first read that nothing has explicitly overridden.
std::mutex g_cfg_mutex;
PackageConfig g_default_cfg;
bool g_cfg_env_folded = false;

thread_local const PackageConfig* t_cfg_override = nullptr;

}  // namespace

PackageConfig default_package_config() {
  std::lock_guard<std::mutex> lock(g_cfg_mutex);
  if (!g_cfg_env_folded) {
    g_cfg_env_folded = true;
    if (const char* env = std::getenv("QDT_DD_TABLE_MB")) {
      char* end = nullptr;
      const unsigned long long mb = std::strtoull(env, &end, 10);
      if (end != env) {
        g_default_cfg.unique_table_mb = static_cast<std::size_t>(mb);
      }
    }
  }
  return g_default_cfg;
}

void set_default_package_config(const PackageConfig& cfg) {
  std::lock_guard<std::mutex> lock(g_cfg_mutex);
  g_default_cfg = cfg;
  g_cfg_env_folded = true;  // an explicit setting beats the env hook
}

PackageConfig current_package_config() {
  return t_cfg_override != nullptr ? *t_cfg_override
                                   : default_package_config();
}

ScopedPackageConfig::ScopedPackageConfig(const PackageConfig& cfg)
    : cfg_(cfg), prev_(t_cfg_override) {
  t_cfg_override = &cfg_;
}

ScopedPackageConfig::~ScopedPackageConfig() { t_cfg_override = prev_; }

Package::Package(std::size_t num_qubits)
    : Package(num_qubits, current_package_config()) {}

Package::Package(std::size_t num_qubits, const PackageConfig& cfg)
    : num_qubits_(num_qubits), cfg_(cfg) {
  if (num_qubits == 0) {
    throw Error::bad_input("Package: need at least one qubit");
  }
  if (num_qubits > 128) {
    throw Error::unsupported("Package: " + std::to_string(num_qubits) +
                             " qubits exceeds the 128-qubit DD edge-label "
                             "encoding");
  }
  gc_live_trigger_ = cfg_.gc_threshold;
}

Package::~Package() {
#ifdef NDEBUG
  const bool audit = std::getenv("QDT_DD_AUDIT") != nullptr;
#else
  const bool audit = true;
#endif
  if (!audit) {
    return;
  }
  try {
    check_refs();
  } catch (const std::exception& e) {
    // A dtor must not throw; a refcount invariant broken at end of life is
    // a bug no test should be able to shrug off.
    std::fprintf(stderr, "qdt: dd package teardown audit failed: %s\n",
                 e.what());
    std::abort();
  }
}

void Package::reset(std::size_t num_qubits) {
  if (num_qubits == 0) {
    throw Error::bad_input("Package: need at least one qubit");
  }
  if (num_qubits > 128) {
    throw Error::unsupported("Package: " + std::to_string(num_qubits) +
                             " qubits exceeds the 128-qubit DD edge-label "
                             "encoding");
  }
  num_qubits_ = num_qubits;
  cfg_ = current_package_config();
  vec_unique_.clear();
  mat_unique_.clear();
  vec_add_cache_.clear();
  mat_add_cache_.clear();
  mv_cache_.clear();
  mm_cache_.clear();
  ip_cache_.clear();
  ct_cache_.clear();
  // Every node slot goes back on its free list; the deques (and the hash
  // tables' bucket arrays) keep their capacity, so a pooled package's RSS
  // stays flat across requests.
  vec_free_.clear();
  vec_free_.reserve(vec_storage_.size());
  for (auto& n : vec_storage_) {
    n.ref = 0;
    vec_free_.push_back(&n);
  }
  mat_free_.clear();
  mat_free_.reserve(mat_storage_.size());
  for (auto& n : mat_storage_) {
    n.ref = 0;
    mat_free_.push_back(&n);
  }
  ctab_.reset();
  gc_pending_ = false;
  gc_arm_full_ = false;
  gc_live_trigger_ = cfg_.gc_threshold;
  gc_pressure_floor_ = 1024;  // back to the initial small-diagram floor
  gc_runs_ = 0;
  gc_freed_nodes_ = 0;
  alloc_tick_ = 0;
  cache_hits_ = 0;
  cache_lookups_ = 0;
}

// ---------------------------------------------------------------------------
// Reference counting and garbage collection
// ---------------------------------------------------------------------------

void Package::inc_node_ref(const VecNode* n) {
  if (n == nullptr || n->ref == kRefSaturated) {
    return;
  }
  if (++n->ref == 1) {
    for (const auto& e : n->succ) {
      inc_node_ref(e.node);
    }
  }
}

void Package::inc_node_ref(const MatNode* n) {
  if (n == nullptr || n->ref == kRefSaturated) {
    return;
  }
  if (++n->ref == 1) {
    for (const auto& e : n->succ) {
      inc_node_ref(e.node);
    }
  }
}

void Package::dec_node_ref(const VecNode* n) {
  if (n == nullptr || n->ref == kRefSaturated) {
    return;
  }
  if (n->ref == 0) {
    throw Error::internal("Package::dec_ref: vec node refcount underflow");
  }
  if (--n->ref == 0) {
    for (const auto& e : n->succ) {
      dec_node_ref(e.node);
    }
  }
}

void Package::dec_node_ref(const MatNode* n) {
  if (n == nullptr || n->ref == kRefSaturated) {
    return;
  }
  if (n->ref == 0) {
    throw Error::internal("Package::dec_ref: mat node refcount underflow");
  }
  if (--n->ref == 0) {
    for (const auto& e : n->succ) {
      dec_node_ref(e.node);
    }
  }
}

void Package::inc_ref(VecEdge e) {
  ctab_.pin(e.weight);
  inc_node_ref(e.node);
}

void Package::inc_ref(MatEdge e) {
  ctab_.pin(e.weight);
  inc_node_ref(e.node);
}

void Package::dec_ref(VecEdge e) {
  ctab_.unpin(e.weight);
  dec_node_ref(e.node);
}

void Package::dec_ref(MatEdge e) {
  ctab_.unpin(e.weight);
  dec_node_ref(e.node);
}

std::size_t Package::live_bytes() const {
  return vec_unique_.size() * kVecNodeBytes +
         mat_unique_.size() * kMatNodeBytes +
         ctab_.live_size() * kWeightBytes;
}

std::size_t Package::footprint_bytes() const {
  const std::size_t cache_entries = vec_add_cache_.size() +
                                    mat_add_cache_.size() + mv_cache_.size() +
                                    mm_cache_.size() + ip_cache_.size() +
                                    ct_cache_.size();
  return vec_storage_.size() * kVecNodeBytes +
         mat_storage_.size() * kMatNodeBytes + ctab_.size() * kWeightBytes +
         cache_entries * kCacheEntryBytes;
}

void Package::note_allocation() {
  const std::size_t live = live_nodes();
  guard::check_dd_nodes(live);
  // gc_pressure_floor_ is hysteresis: right after a collection the live set
  // is as small as it gets, so consulting guard::pressure again before it
  // regrows ~25% would re-arm a zero-yield collection on every allocation.
  if (live >= gc_pressure_floor_ &&
      guard::pressure(Resource::DdNodes, live)) {
    gc_pending_ = true;
    gc_arm_full_ = true;
  }
  if (cfg_.gc_threshold != 0 && live >= gc_live_trigger_) {
    gc_pending_ = true;
  }
  if (cfg_.unique_table_mb != 0 &&
      live_bytes() >= cfg_.unique_table_mb * (std::size_t{1} << 20)) {
    gc_pending_ = true;
    gc_arm_full_ = true;
  }
  if ((++alloc_tick_ & 0x3F) == 0) {
    // Byte/deadline checks are sampled (every 64 allocations): they cost a
    // clock read / several multiplies and allocation is the DD hot path.
    const std::size_t bytes = footprint_bytes();
    g_bytes_peak.update_max(static_cast<std::int64_t>(bytes));
    guard::check_memory(bytes, "dd package");
    guard::check_deadline();
    if (live >= gc_pressure_floor_ &&
        guard::pressure(Resource::Memory, bytes)) {
      gc_pending_ = true;
      gc_arm_full_ = true;
    }
  }
}

std::size_t Package::collect_garbage(bool reclaim_weights) {
  trace::Span span("qdt.dd.gc.collect");
  const std::size_t live_before = live_nodes();

  // 1. Sweep: every node with ref == 0 leaves its unique table and joins
  // the free list. Dead parents never contributed to their children's
  // counts (that happens only on the 0 -> 1 transition), so a single pass
  // suffices — no cascade.
  std::size_t freed = 0;
  for (auto it = vec_unique_.begin(); it != vec_unique_.end();) {
    if (it->second->ref == 0) {
      vec_free_.push_back(const_cast<VecNode*>(it->second));
      it = vec_unique_.erase(it);
      ++freed;
    } else {
      ++it;
    }
  }
  for (auto it = mat_unique_.begin(); it != mat_unique_.end();) {
    if (it->second->ref == 0) {
      mat_free_.push_back(const_cast<MatNode*>(it->second));
      it = mat_unique_.erase(it);
      ++freed;
    } else {
      ++it;
    }
  }

  // 2. Prune exactly the cache lines that mention a freed node (key or
  // value side). This must complete before any slot can be reused: a stale
  // pointer surviving here would later alias a recycled slot and produce a
  // false cache hit (the classic ABA bug of pointer-keyed compute tables).
  const auto vec_dead = [](const VecNode* n) {
    return n != nullptr && n->ref == 0;
  };
  const auto mat_dead = [](const MatNode* n) {
    return n != nullptr && n->ref == 0;
  };
  std::erase_if(vec_add_cache_, [&](const auto& kv) {
    return vec_dead(static_cast<const VecNode*>(kv.first.a)) ||
           vec_dead(static_cast<const VecNode*>(kv.first.b)) ||
           vec_dead(kv.second.node);
  });
  std::erase_if(mat_add_cache_, [&](const auto& kv) {
    return mat_dead(static_cast<const MatNode*>(kv.first.a)) ||
           mat_dead(static_cast<const MatNode*>(kv.first.b)) ||
           mat_dead(kv.second.node);
  });
  std::erase_if(mv_cache_, [&](const auto& kv) {
    return mat_dead(static_cast<const MatNode*>(kv.first.a)) ||
           vec_dead(static_cast<const VecNode*>(kv.first.b)) ||
           vec_dead(kv.second.node);
  });
  std::erase_if(mm_cache_, [&](const auto& kv) {
    return mat_dead(static_cast<const MatNode*>(kv.first.a)) ||
           mat_dead(static_cast<const MatNode*>(kv.first.b)) ||
           mat_dead(kv.second.node);
  });
  std::erase_if(ip_cache_, [&](const auto& kv) {
    return vec_dead(static_cast<const VecNode*>(kv.first.a)) ||
           vec_dead(static_cast<const VecNode*>(kv.first.b));
  });
  std::erase_if(ct_cache_, [&](const auto& kv) {
    return mat_dead(kv.first) || mat_dead(kv.second.node);
  });

  // 3. Weight liveness — full collections only (routine ones keep dead
  // weights as interning representatives; see the header): kZero/kOne,
  // every successor weight of a surviving table node, every pinned root
  // weight, and every weight a surviving cache line still mentions
  // (add-key ratios and cached unit-edge weights are interned values
  // nothing else may reference).
  std::size_t freed_weights = 0;
  if (reclaim_weights) {
    std::vector<char> keep(ctab_.size(), 0);
    keep[ComplexTable::kZero] = 1;
    keep[ComplexTable::kOne] = 1;
    for (const auto& [key, n] : vec_unique_) {
      for (const auto& e : n->succ) {
        keep[e.weight] = 1;
      }
    }
    for (const auto& [key, n] : mat_unique_) {
      for (const auto& e : n->succ) {
        keep[e.weight] = 1;
      }
    }
    ctab_.mark_pinned(keep);
    for (const auto& kv : vec_add_cache_) {
      keep[kv.first.ratio] = 1;
      keep[kv.second.weight] = 1;
    }
    for (const auto& kv : mat_add_cache_) {
      keep[kv.first.ratio] = 1;
      keep[kv.second.weight] = 1;
    }
    for (const auto& kv : mv_cache_) {
      keep[kv.second.weight] = 1;
    }
    for (const auto& kv : mm_cache_) {
      keep[kv.second.weight] = 1;
    }
    for (const auto& kv : ct_cache_) {
      keep[kv.second.weight] = 1;
    }
    freed_weights = ctab_.sweep(keep);
  }

  // 4. Bookkeeping and the adaptive re-arm: the next count-based trigger
  // sits at twice the surviving live set (floored at the configured
  // threshold), so a workload whose live state legitimately dwarfs the
  // threshold is not collected on every gate for zero yield.
  gc_pending_ = false;
  ++gc_runs_;
  gc_freed_nodes_ += freed;
  const std::size_t live_after = live_nodes();
  if (cfg_.gc_threshold != 0) {
    gc_live_trigger_ = std::max(cfg_.gc_threshold, live_after * 2);
  }
  gc_pressure_floor_ = live_after + live_after / 4 + 1024;
  g_gc_runs.add();
  g_gc_freed_nodes.add(freed);
  g_gc_freed_weights.add(freed_weights);
  g_gc_live.set(static_cast<std::int64_t>(live_after));
  span.attr("live_before", static_cast<std::uint64_t>(live_before))
      .attr("live_after", static_cast<std::uint64_t>(live_after))
      .attr("freed_nodes", static_cast<std::uint64_t>(freed))
      .attr("freed_weights", static_cast<std::uint64_t>(freed_weights));
  return freed;
}

bool Package::maybe_collect_garbage() {
  if (!gc_pending_) {
    return false;
  }
  const bool full = gc_arm_full_;
  gc_arm_full_ = false;
  collect_garbage(/*reclaim_weights=*/full);
  if (cfg_.unique_table_mb != 0) {
    const std::size_t bound = cfg_.unique_table_mb * (std::size_t{1} << 20);
    if (live_bytes() >= bound && !full) {
      // The node-only sweep left dead weights behind; reclaim them before
      // concluding the live set genuinely does not fit.
      collect_garbage(/*reclaim_weights=*/true);
    }
    if (live_bytes() >= bound) {
      // Collection was not enough: the *live* set itself no longer fits
      // the configured table bound. Only now degrade with the typed error
      // the robust ladder dispatches on.
      throw Error::exhausted(
          Resource::DdNodes,
          "dd unique tables: live set of " + std::to_string(live_bytes()) +
              " bytes still exceeds the " +
              std::to_string(cfg_.unique_table_mb) +
              " MiB table bound after garbage collection");
    }
  }
  return true;
}

void Package::check_refs() const {
  const auto fail = [](const std::string& msg) {
    throw Error::internal("Package::check_refs: " + msg);
  };

  // 1. Storage partition: every slot is either in its unique table or on
  // its free list, never both, never twice.
  std::unordered_set<const VecNode*> vec_free_set(vec_free_.begin(),
                                                  vec_free_.end());
  std::unordered_set<const MatNode*> mat_free_set(mat_free_.begin(),
                                                  mat_free_.end());
  if (vec_free_set.size() != vec_free_.size()) {
    fail("duplicate pointer on the vec free list");
  }
  if (mat_free_set.size() != mat_free_.size()) {
    fail("duplicate pointer on the mat free list");
  }
  if (vec_unique_.size() + vec_free_.size() != vec_storage_.size()) {
    fail("vec storage is not partitioned into table + free list");
  }
  if (mat_unique_.size() + mat_free_.size() != mat_storage_.size()) {
    fail("mat storage is not partitioned into table + free list");
  }
  std::unordered_set<const VecNode*> vec_live;
  for (const auto& [key, n] : vec_unique_) {
    if (vec_free_set.contains(n)) {
      fail("vec node is both in the unique table and on the free list");
    }
    vec_live.insert(n);
  }
  std::unordered_set<const MatNode*> mat_live;
  for (const auto& [key, n] : mat_unique_) {
    if (mat_free_set.contains(n)) {
      fail("mat node is both in the unique table and on the free list");
    }
    mat_live.insert(n);
  }

  // 2. In-degree induced by referenced parents: only a parent with ref > 0
  // contributes to its children's counts (the 0 -> 1 / 1 -> 0 recursion),
  // counted once per edge.
  std::unordered_map<const VecNode*, std::uint64_t> vec_indeg;
  for (const auto& [key, n] : vec_unique_) {
    if (n->ref == 0) {
      continue;
    }
    for (const auto& e : n->succ) {
      if (e.node != nullptr) {
        ++vec_indeg[e.node];
      }
    }
  }
  std::unordered_map<const MatNode*, std::uint64_t> mat_indeg;
  for (const auto& [key, n] : mat_unique_) {
    if (n->ref == 0) {
      continue;
    }
    for (const auto& e : n->succ) {
      if (e.node != nullptr) {
        ++mat_indeg[e.node];
      }
    }
  }

  // 3. Per-node invariants.
  for (const auto& [key, n] : vec_unique_) {
    const auto it = vec_indeg.find(n);
    const std::uint64_t indeg = it != vec_indeg.end() ? it->second : 0;
    if (n->ref != kRefSaturated && n->ref < indeg) {
      fail("vec node refcount " + std::to_string(n->ref) +
           " below its live-parent in-degree " + std::to_string(indeg));
    }
    for (const auto& e : n->succ) {
      if (e.node != nullptr && !vec_live.contains(e.node)) {
        fail("vec table node points at a freed child");
      }
      if (n->ref > 0 && e.node != nullptr && e.node->ref == 0) {
        fail("referenced vec node has an unreferenced child");
      }
      if (ctab_.is_dead(e.weight)) {
        fail("vec table node carries a swept complex-table weight");
      }
    }
  }
  for (const auto& [key, n] : mat_unique_) {
    const auto it = mat_indeg.find(n);
    const std::uint64_t indeg = it != mat_indeg.end() ? it->second : 0;
    if (n->ref != kRefSaturated && n->ref < indeg) {
      fail("mat node refcount " + std::to_string(n->ref) +
           " below its live-parent in-degree " + std::to_string(indeg));
    }
    for (const auto& e : n->succ) {
      if (e.node != nullptr && !mat_live.contains(e.node)) {
        fail("mat table node points at a freed child");
      }
      if (n->ref > 0 && e.node != nullptr && e.node->ref == 0) {
        fail("referenced mat node has an unreferenced child");
      }
      if (ctab_.is_dead(e.weight)) {
        fail("mat table node carries a swept complex-table weight");
      }
    }
  }

  // 4. Complex-table sanity: a pinned index must be live.
  for (ComplexTable::Index i = 0;
       i < static_cast<ComplexTable::Index>(ctab_.size()); ++i) {
    if (ctab_.pin_count(i) > 0 && ctab_.is_dead(i)) {
      fail("complex-table pin on a swept index " + std::to_string(i));
    }
  }
}

template <typename Cache>
void Package::bound_cache(Cache& cache) {
  if (cfg_.cache_entries != 0 && cache.size() >= cfg_.cache_entries) {
    // Wholesale clear: pointer-keyed entries cannot be aged individually
    // without per-entry clocks, and a full cache at this size has already
    // amortized its build cost.
    cache.clear();
    g_cache_evictions.add();
  }
}

// ---------------------------------------------------------------------------
// Node construction
// ---------------------------------------------------------------------------

VecEdge Package::make_vec_node(std::uint32_t var, VecEdge e0, VecEdge e1) {
  if (e0.is_zero() && e1.is_zero()) {
    return VecEdge::zero();
  }
  // Normalize: divide by the largest-magnitude weight so that equal
  // subvectors (up to a factor) produce the identical node. Ties are broken
  // towards the lower index *within tolerance*: states with uniform
  // amplitude magnitudes (QFT outputs!) would otherwise flip the argmax on
  // rounding noise and lose all sharing. The tolerance must be relative to
  // the magnitudes — an absolute one lets a zero weight win whenever both
  // entries are below sqrt(kEps), silently zeroing a nonzero subvector.
  const double n0 = ctab_.norm2(e0.weight);
  const double n1 = ctab_.norm2(e1.weight);
  const ComplexTable::Index norm =
      n1 > n0 + kEps * std::max(n0, n1) ? e1.weight : e0.weight;
  VecNode node;
  node.var = var;
  node.succ[0] = VecEdge{e0.node, ctab_.div(e0.weight, norm)};
  node.succ[1] = VecEdge{e1.node, ctab_.div(e1.weight, norm)};
  // Canonical zero form: a zero-weight edge points at the terminal.
  for (auto& s : node.succ) {
    if (s.is_zero()) {
      s.node = nullptr;
    }
  }
  const auto it = vec_unique_.find(node);
  if (it != vec_unique_.end()) {
    g_ut_hits.add();
    return VecEdge{it->second, norm};
  }
  g_ut_misses.add();
  g_node_allocs.add();
  VecNode* stored;
  if (!vec_free_.empty()) {
    // Reuse a swept slot. Safe against stale aliases: nodes only reach the
    // free list inside collect_garbage(), which has already pruned every
    // cache line mentioning them.
    stored = vec_free_.back();
    vec_free_.pop_back();
    *stored = node;  // node.ref is 0
  } else {
    vec_storage_.push_back(node);
    stored = &vec_storage_.back();
  }
  vec_unique_.emplace(node, stored);
  note_allocation();
  return VecEdge{stored, norm};
}

MatEdge Package::make_mat_node(std::uint32_t var,
                               std::array<MatEdge, 4> succ) {
  bool all_zero = true;
  for (const auto& e : succ) {
    all_zero = all_zero && e.is_zero();
  }
  if (all_zero) {
    return MatEdge::zero();
  }
  // Same tolerance-aware argmax as make_vec_node: first index within a
  // *relative* kEps of the maximum. Differential fuzzing found the absolute
  // form (`>= best - kEps`) collapsing nonzero nodes to the zero edge: when
  // every successor magnitude is below sqrt(kEps), a zero weight wins the
  // argmax and the division zeroes the node — an rz(pi/2^26) residual of
  // ~2e-8 vanished from a miter product, refuting a true equivalence.
  double best = 0.0;
  for (const auto& e : succ) {
    best = std::max(best, ctab_.norm2(e.weight));
  }
  std::size_t k = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (ctab_.norm2(succ[i].weight) >= best * (1.0 - kEps)) {
      k = i;
      break;
    }
  }
  const ComplexTable::Index norm = succ[k].weight;
  MatNode node;
  node.var = var;
  for (std::size_t i = 0; i < 4; ++i) {
    node.succ[i] = MatEdge{succ[i].node, ctab_.div(succ[i].weight, norm)};
    if (node.succ[i].is_zero()) {
      node.succ[i].node = nullptr;
    }
  }
  const auto it = mat_unique_.find(node);
  if (it != mat_unique_.end()) {
    g_ut_hits.add();
    return MatEdge{it->second, norm};
  }
  g_ut_misses.add();
  g_node_allocs.add();
  MatNode* stored;
  if (!mat_free_.empty()) {
    stored = mat_free_.back();
    mat_free_.pop_back();
    *stored = node;  // node.ref is 0
  } else {
    mat_storage_.push_back(node);
    stored = &mat_storage_.back();
  }
  mat_unique_.emplace(node, stored);
  note_allocation();
  return MatEdge{stored, norm};
}

// ---------------------------------------------------------------------------
// Vector construction / readout
// ---------------------------------------------------------------------------

VecEdge Package::zero_state() { return basis_state(0); }

VecEdge Package::basis_state(std::uint64_t index) {
  VecEdge e = VecEdge::one();
  for (std::uint32_t var = 0; var < num_qubits_; ++var) {
    if (get_bit(index, var)) {
      e = make_vec_node(var, VecEdge::zero(), e);
    } else {
      e = make_vec_node(var, e, VecEdge::zero());
    }
  }
  return e;
}

VecEdge Package::from_vector(const std::vector<Complex>& amplitudes) {
  if (amplitudes.size() != (std::size_t{1} << num_qubits_)) {
    throw std::invalid_argument("from_vector: size != 2^n");
  }
  return from_vector_rec(amplitudes.data(),
                         static_cast<std::int64_t>(num_qubits_) - 1,
                         amplitudes.size());
}

VecEdge Package::from_vector_rec(const Complex* data, std::int64_t level,
                                 std::size_t len) {
  if (level < 0) {
    return VecEdge{nullptr, ctab_.lookup(data[0])};
  }
  const std::size_t half = len / 2;
  const VecEdge e0 = from_vector_rec(data, level - 1, half);
  const VecEdge e1 = from_vector_rec(data + half, level - 1, half);
  return make_vec_node(static_cast<std::uint32_t>(level), e0, e1);
}

namespace {

void to_vector_walk(const ComplexTable& ctab, VecEdge e, std::int64_t level,
                    Complex acc, std::uint64_t base,
                    std::vector<Complex>& out) {
  if (e.is_zero()) {
    return;
  }
  acc *= ctab.get(e.weight);
  if (level < 0) {
    out[base] = acc;
    return;
  }
  to_vector_walk(ctab, e.node->succ[0], level - 1, acc, base, out);
  to_vector_walk(ctab, e.node->succ[1], level - 1, acc,
                 base | (std::uint64_t{1} << level), out);
}

}  // namespace

std::vector<Complex> Package::to_vector(VecEdge e) const {
  // Dense readout is the one DD operation that re-introduces the 2^n
  // array; it must respect the byte budget like the array backend does
  // (and never shift past the word size — the package itself goes to 128
  // qubits).
  if (num_qubits_ >= 48) {
    throw Error::exhausted(Resource::Memory,
                           "dd dense readout: 2^" +
                               std::to_string(num_qubits_) +
                               " amplitudes cannot be materialized");
  }
  guard::check_memory((std::size_t{1} << num_qubits_) * sizeof(Complex),
                      "dd dense readout");
  std::vector<Complex> out(std::size_t{1} << num_qubits_, Complex{});
  to_vector_walk(ctab_, e, static_cast<std::int64_t>(num_qubits_) - 1,
                 Complex{1.0}, 0, out);
  return out;
}

Complex Package::amplitude(VecEdge e, std::uint64_t index) const {
  Complex acc{1.0};
  for (std::int64_t level = static_cast<std::int64_t>(num_qubits_) - 1;
       level >= 0; --level) {
    if (e.is_zero()) {
      return Complex{};
    }
    acc *= ctab_.get(e.weight);
    e = e.node->succ[get_bit(index, static_cast<std::size_t>(level))];
  }
  if (e.is_zero()) {
    return Complex{};
  }
  return acc * ctab_.get(e.weight);
}

// ---------------------------------------------------------------------------
// Vector operations
// ---------------------------------------------------------------------------

VecEdge Package::add(VecEdge a, VecEdge b) {
  return add_rec(a, b, static_cast<std::int64_t>(num_qubits_) - 1);
}

VecEdge Package::add_rec(VecEdge a, VecEdge b, std::int64_t level) {
  if (a.is_zero()) {
    return b;
  }
  if (b.is_zero()) {
    return a;
  }
  if (level < 0) {
    return VecEdge{nullptr, ctab_.add(a.weight, b.weight)};
  }
  if (a.node == b.node) {
    // Proportional operands collapse immediately.
    return VecEdge{a.node, ctab_.add(a.weight, b.weight)};
  }
  // Factor the first weight out so the cache key depends only on the
  // weight *ratio*. Addition is commutative, but the operands are NOT
  // canonicalized by pointer order here: node addresses depend on free-
  // list reuse, so a pointer-ordered swap would make the floating-point
  // evaluation order — and hence the low bits of the result — depend on
  // garbage-collection history. Caller argument order is run-independent;
  // the cache merely stores commutative pairs in both orientations.
  const ComplexTable::Index ratio = ctab_.div(b.weight, a.weight);
  const AddKey<VecEdge> key{a.node, b.node, ratio};
  ++cache_lookups_;
  if (const auto it = vec_add_cache_.find(key); it != vec_add_cache_.end()) {
    ++cache_hits_;
    g_ct_hits.add();
    return VecEdge{it->second.node,
                   ctab_.mul(a.weight, it->second.weight)};
  }
  g_ct_misses.add();
  std::array<VecEdge, 2> r;
  for (std::size_t i = 0; i < 2; ++i) {
    const VecEdge ai = a.node->succ[i];
    const VecEdge bi{b.node->succ[i].node,
                     ctab_.mul(ratio, b.node->succ[i].weight)};
    r[i] = add_rec(ai, bi, level - 1);
  }
  const VecEdge unit =
      make_vec_node(static_cast<std::uint32_t>(level), r[0], r[1]);
  bound_cache(vec_add_cache_);
  vec_add_cache_.emplace(key, unit);
  return VecEdge{unit.node, ctab_.mul(a.weight, unit.weight)};
}

MatEdge Package::add(MatEdge a, MatEdge b) {
  return add_rec(a, b, static_cast<std::int64_t>(num_qubits_) - 1);
}

MatEdge Package::add_rec(MatEdge a, MatEdge b, std::int64_t level) {
  if (a.is_zero()) {
    return b;
  }
  if (b.is_zero()) {
    return a;
  }
  if (level < 0) {
    return MatEdge{nullptr, ctab_.add(a.weight, b.weight)};
  }
  if (a.node == b.node) {
    return MatEdge{a.node, ctab_.add(a.weight, b.weight)};
  }
  // No pointer-ordered canonicalization — see the vector add_rec.
  const ComplexTable::Index ratio = ctab_.div(b.weight, a.weight);
  const AddKey<MatEdge> key{a.node, b.node, ratio};
  ++cache_lookups_;
  if (const auto it = mat_add_cache_.find(key); it != mat_add_cache_.end()) {
    ++cache_hits_;
    g_ct_hits.add();
    return MatEdge{it->second.node,
                   ctab_.mul(a.weight, it->second.weight)};
  }
  g_ct_misses.add();
  std::array<MatEdge, 4> r;
  for (std::size_t i = 0; i < 4; ++i) {
    const MatEdge ai = a.node->succ[i];
    const MatEdge bi{b.node->succ[i].node,
                     ctab_.mul(ratio, b.node->succ[i].weight)};
    r[i] = add_rec(ai, bi, level - 1);
  }
  const MatEdge unit = make_mat_node(static_cast<std::uint32_t>(level), r);
  bound_cache(mat_add_cache_);
  mat_add_cache_.emplace(key, unit);
  return MatEdge{unit.node, ctab_.mul(a.weight, unit.weight)};
}

VecEdge Package::multiply(MatEdge m, VecEdge v) {
  return mul_rec(m, v, static_cast<std::int64_t>(num_qubits_) - 1);
}

VecEdge Package::mul_rec(MatEdge a, VecEdge b, std::int64_t level) {
  if (a.is_zero() || b.is_zero()) {
    return VecEdge::zero();
  }
  if (level < 0) {
    return VecEdge{nullptr, ctab_.mul(a.weight, b.weight)};
  }
  // Top weights factor out; cache unit-weight results.
  const PairKey key{a.node, b.node};
  ++cache_lookups_;
  VecEdge unit;
  if (const auto it = mv_cache_.find(key); it != mv_cache_.end()) {
    ++cache_hits_;
    g_ct_hits.add();
    unit = it->second;
  } else {
    g_ct_misses.add();
    std::array<VecEdge, 2> r;
    for (std::size_t i = 0; i < 2; ++i) {
      VecEdge sum = VecEdge::zero();
      for (std::size_t j = 0; j < 2; ++j) {
        const VecEdge term =
            mul_rec(a.node->succ[2 * i + j], b.node->succ[j], level - 1);
        sum = add_rec(sum, term, level - 1);
      }
      r[i] = sum;
    }
    unit = make_vec_node(static_cast<std::uint32_t>(level), r[0], r[1]);
    bound_cache(mv_cache_);
    mv_cache_.emplace(key, unit);
  }
  return VecEdge{unit.node,
                 ctab_.mul(unit.weight, ctab_.mul(a.weight, b.weight))};
}

MatEdge Package::multiply(MatEdge a, MatEdge b) {
  return mul_rec(a, b, static_cast<std::int64_t>(num_qubits_) - 1);
}

MatEdge Package::mul_rec(MatEdge a, MatEdge b, std::int64_t level) {
  if (a.is_zero() || b.is_zero()) {
    return MatEdge::zero();
  }
  if (level < 0) {
    return MatEdge{nullptr, ctab_.mul(a.weight, b.weight)};
  }
  const PairKey key{a.node, b.node};
  ++cache_lookups_;
  MatEdge unit;
  if (const auto it = mm_cache_.find(key); it != mm_cache_.end()) {
    ++cache_hits_;
    g_ct_hits.add();
    unit = it->second;
  } else {
    g_ct_misses.add();
    std::array<MatEdge, 4> r;
    for (std::size_t i = 0; i < 2; ++i) {
      for (std::size_t j = 0; j < 2; ++j) {
        MatEdge sum = MatEdge::zero();
        for (std::size_t k = 0; k < 2; ++k) {
          const MatEdge term = mul_rec(a.node->succ[2 * i + k],
                                       b.node->succ[2 * k + j], level - 1);
          sum = add_rec(sum, term, level - 1);
        }
        r[2 * i + j] = sum;
      }
    }
    unit = make_mat_node(static_cast<std::uint32_t>(level), r);
    bound_cache(mm_cache_);
    mm_cache_.emplace(key, unit);
  }
  return MatEdge{unit.node,
                 ctab_.mul(unit.weight, ctab_.mul(a.weight, b.weight))};
}

Complex Package::inner_product(VecEdge a, VecEdge b) {
  return ip_rec(a, b, static_cast<std::int64_t>(num_qubits_) - 1);
}

Complex Package::ip_rec(VecEdge a, VecEdge b, std::int64_t level) {
  if (a.is_zero() || b.is_zero()) {
    return Complex{};
  }
  const Complex scale =
      std::conj(ctab_.get(a.weight)) * ctab_.get(b.weight);
  if (level < 0) {
    return scale;
  }
  const PairKey key{a.node, b.node};
  ++cache_lookups_;
  if (const auto it = ip_cache_.find(key); it != ip_cache_.end()) {
    ++cache_hits_;
    g_ct_hits.add();
    return scale * it->second;
  }
  g_ct_misses.add();
  Complex sum{};
  for (std::size_t i = 0; i < 2; ++i) {
    sum += ip_rec(a.node->succ[i], b.node->succ[i], level - 1);
  }
  bound_cache(ip_cache_);
  ip_cache_.emplace(key, sum);
  return scale * sum;
}

double Package::norm2(VecEdge e) { return inner_product(e, e).real(); }

VecEdge Package::project(VecEdge e, ir::Qubit q, bool bit) {
  std::unordered_map<const VecNode*, VecEdge> memo;
  return project_rec(e, q, bit, memo);
}

VecEdge Package::project_rec(
    VecEdge e, ir::Qubit q, bool bit,
    std::unordered_map<const VecNode*, VecEdge>& memo) {
  if (e.is_zero()) {
    return VecEdge::zero();
  }
  const VecNode* n = e.node;
  if (n == nullptr || n->var < q) {
    // Entire subtree below the projected qubit: unchanged.
    return e;
  }
  if (const auto it = memo.find(n); it != memo.end()) {
    return VecEdge{it->second.node, ctab_.mul(e.weight, it->second.weight)};
  }
  VecEdge unit;
  if (n->var == q) {
    const VecEdge kept = n->succ[bit ? 1 : 0];
    unit = make_vec_node(n->var, bit ? VecEdge::zero() : kept,
                         bit ? kept : VecEdge::zero());
  } else {
    const VecEdge p0 = project_rec(n->succ[0], q, bit, memo);
    const VecEdge p1 = project_rec(n->succ[1], q, bit, memo);
    unit = make_vec_node(n->var, p0, p1);
  }
  memo.emplace(n, unit);
  return VecEdge{unit.node, ctab_.mul(e.weight, unit.weight)};
}

double Package::prob_one(VecEdge e, ir::Qubit q) {
  const double total = norm2(e);
  if (total <= 0.0) {
    return 0.0;
  }
  return norm2(project(e, q, true)) / total;
}

double Package::subtree_norm2(
    const VecNode* n, std::unordered_map<const VecNode*, double>& memo) {
  if (n == nullptr) {
    return 1.0;
  }
  if (const auto it = memo.find(n); it != memo.end()) {
    return it->second;
  }
  double s = 0.0;
  for (const auto& e : n->succ) {
    if (!e.is_zero()) {
      s += ctab_.norm2(e.weight) * subtree_norm2(e.node, memo);
    }
  }
  memo.emplace(n, s);
  return s;
}

std::uint64_t Package::sample(VecEdge e, Rng& rng) {
  if (e.is_zero()) {
    throw std::logic_error("sample: zero state");
  }
  std::unordered_map<const VecNode*, double> memo;
  std::uint64_t result = 0;
  VecEdge cur = e;
  while (!cur.is_terminal()) {
    const VecNode* n = cur.node;
    const double w0 = cur.node->succ[0].is_zero()
                          ? 0.0
                          : ctab_.norm2(n->succ[0].weight) *
                                subtree_norm2(n->succ[0].node, memo);
    const double w1 = cur.node->succ[1].is_zero()
                          ? 0.0
                          : ctab_.norm2(n->succ[1].weight) *
                                subtree_norm2(n->succ[1].node, memo);
    const double total = w0 + w1;
    const bool bit = total > 0.0 && rng.uniform() * total >= w0;
    if (bit) {
      result = set_bit(result, n->var, true);
    }
    cur = n->succ[bit ? 1 : 0];
  }
  return result;
}

// ---------------------------------------------------------------------------
// Matrix construction
// ---------------------------------------------------------------------------

MatEdge Package::identity() {
  MatEdge e = MatEdge::one();
  for (std::uint32_t var = 0; var < num_qubits_; ++var) {
    e = make_mat_node(var, {e, MatEdge::zero(), MatEdge::zero(), e});
  }
  return e;
}

MatEdge Package::single_qubit_dd(const Mat2& m, ir::Qubit target,
                                 const std::vector<ir::Qubit>& controls) {
  if (target >= num_qubits_) {
    throw std::out_of_range("single_qubit_dd: target out of range");
  }
  std::vector<bool> is_control(num_qubits_, false);
  for (const auto c : controls) {
    if (c >= num_qubits_ || c == target) {
      throw std::out_of_range("single_qubit_dd: bad control");
    }
    is_control[c] = true;
  }
  // Entry edges for the four matrix elements, extended upward level by
  // level; id_below tracks the identity on all processed levels.
  std::array<MatEdge, 4> entry;
  for (std::size_t k = 0; k < 4; ++k) {
    entry[k] = MatEdge{nullptr, ctab_.lookup(m.e[k])};
  }
  MatEdge id_below = MatEdge::one();
  MatEdge result{};
  bool passed_target = false;
  const MatEdge zero = MatEdge::zero();
  for (std::uint32_t v = 0; v < num_qubits_; ++v) {
    if (v == target) {
      // Matrix child order is (row<<1)|col of this level's bits; entry k
      // of Mat2 is m(k>>1, k&1) — identical layout.
      result = make_mat_node(v, entry);
      passed_target = true;
    } else if (is_control[v]) {
      if (!passed_target) {
        for (std::size_t k = 0; k < 4; ++k) {
          const bool diag = k == 0 || k == 3;
          entry[k] = make_mat_node(
              v, {diag ? id_below : zero, zero, zero, entry[k]});
        }
      } else {
        result = make_mat_node(v, {id_below, zero, zero, result});
      }
    } else {
      if (!passed_target) {
        for (std::size_t k = 0; k < 4; ++k) {
          entry[k] = make_mat_node(v, {entry[k], zero, zero, entry[k]});
        }
      } else {
        result = make_mat_node(v, {result, zero, zero, result});
      }
    }
    id_below = make_mat_node(v, {id_below, zero, zero, id_below});
  }
  return result;
}

MatEdge Package::gate_dd(const ir::Operation& op) {
  if (!op.is_unitary()) {
    throw std::logic_error("gate_dd: non-unitary operation " + op.str());
  }
  if (op.targets().size() == 1) {
    return single_qubit_dd(op.matrix2(), op.targets()[0], op.controls());
  }
  const ir::Qubit a = op.targets()[0];
  const ir::Qubit b = op.targets()[1];
  const Mat2 x_mat = ir::gate_matrix2(ir::GateKind::X, {});
  const Mat2 s_mat = ir::gate_matrix2(ir::GateKind::S, {});
  const Mat2 z_mat = ir::gate_matrix2(ir::GateKind::Z, {});
  const Mat2 h_mat = ir::gate_matrix2(ir::GateKind::H, {});
  switch (op.kind()) {
    case ir::GateKind::Swap: {
      // (C)SWAP = CX(b,a) . (controls+{a})-X(b) . CX(b,a).
      const MatEdge outer = single_qubit_dd(x_mat, a, {b});
      std::vector<ir::Qubit> inner_ctrls = op.controls();
      inner_ctrls.push_back(a);
      const MatEdge inner = single_qubit_dd(x_mat, b, inner_ctrls);
      return multiply(outer, multiply(inner, outer));
    }
    case ir::GateKind::ISwap:
    case ir::GateKind::ISwapDg: {
      if (!op.controls().empty()) {
        throw std::invalid_argument("gate_dd: controlled iswap unsupported");
      }
      const MatEdge sw =
          gate_dd(ir::Operation{ir::GateKind::Swap, {a, b}});
      const MatEdge cz = single_qubit_dd(z_mat, b, {a});
      const MatEdge sa = single_qubit_dd(s_mat, a, {});
      const MatEdge sb = single_qubit_dd(s_mat, b, {});
      const MatEdge iswap = multiply(sa, multiply(sb, multiply(cz, sw)));
      return op.kind() == ir::GateKind::ISwap ? iswap
                                              : conjugate_transpose(iswap);
    }
    case ir::GateKind::RZZ: {
      if (!op.controls().empty()) {
        throw std::invalid_argument("gate_dd: controlled rzz unsupported");
      }
      const MatEdge cx = single_qubit_dd(x_mat, b, {a});
      const Mat2 rz = ir::gate_matrix2(ir::GateKind::RZ, op.params());
      const MatEdge rzb = single_qubit_dd(rz, b, {});
      return multiply(cx, multiply(rzb, cx));
    }
    case ir::GateKind::RXX: {
      if (!op.controls().empty()) {
        throw std::invalid_argument("gate_dd: controlled rxx unsupported");
      }
      const MatEdge ha = single_qubit_dd(h_mat, a, {});
      const MatEdge hb = single_qubit_dd(h_mat, b, {});
      const MatEdge hh = multiply(ha, hb);
      const MatEdge rzz = gate_dd(
          ir::Operation{ir::GateKind::RZZ, {a, b}, {}, op.params()});
      return multiply(hh, multiply(rzz, hh));
    }
    default:
      throw std::logic_error("gate_dd: unhandled two-qubit kind " +
                             ir::gate_name(op.kind()));
  }
}

MatEdge Package::from_matrix(const std::vector<Complex>& row_major) {
  const std::size_t dim = std::size_t{1} << num_qubits_;
  if (row_major.size() != dim * dim) {
    throw std::invalid_argument("from_matrix: size != 4^n");
  }
  return from_matrix_rec(row_major, dim, 0, 0,
                         static_cast<std::int64_t>(num_qubits_) - 1);
}

MatEdge Package::from_matrix_rec(const std::vector<Complex>& m,
                                 std::size_t dim, std::size_t row,
                                 std::size_t col, std::int64_t level) {
  if (level < 0) {
    return MatEdge{nullptr, ctab_.lookup(m[row * dim + col])};
  }
  const std::size_t half = std::size_t{1} << level;
  std::array<MatEdge, 4> succ;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      succ[2 * i + j] =
          from_matrix_rec(m, dim, row + i * half, col + j * half, level - 1);
    }
  }
  return make_mat_node(static_cast<std::uint32_t>(level), succ);
}

namespace {

void to_matrix_walk(const ComplexTable& ctab, MatEdge e, std::int64_t level,
                    Complex acc, std::size_t row, std::size_t col,
                    std::size_t dim, std::vector<Complex>& out) {
  if (e.is_zero()) {
    return;
  }
  acc *= ctab.get(e.weight);
  if (level < 0) {
    out[row * dim + col] = acc;
    return;
  }
  const std::size_t half = std::size_t{1} << level;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      to_matrix_walk(ctab, e.node->succ[2 * i + j], level - 1, acc,
                     row + i * half, col + j * half, dim, out);
    }
  }
}

}  // namespace

std::vector<Complex> Package::to_matrix(MatEdge e) const {
  const std::size_t dim = std::size_t{1} << num_qubits_;
  std::vector<Complex> out(dim * dim, Complex{});
  to_matrix_walk(ctab_, e, static_cast<std::int64_t>(num_qubits_) - 1,
                 Complex{1.0}, 0, 0, dim, out);
  return out;
}

MatEdge Package::conjugate_transpose(MatEdge e) {
  const MatEdge unit = ct_rec(MatEdge{e.node, ComplexTable::kOne});
  return MatEdge{unit.node,
                 ctab_.mul(unit.weight, ctab_.conj(e.weight))};
}

MatEdge Package::ct_rec(MatEdge e) {
  if (e.is_zero()) {
    return MatEdge::zero();
  }
  if (e.is_terminal()) {
    return MatEdge{nullptr, ctab_.conj(e.weight)};
  }
  if (const auto it = ct_cache_.find(e.node); it != ct_cache_.end()) {
    return MatEdge{it->second.node,
                   ctab_.mul(ctab_.conj(e.weight), it->second.weight)};
  }
  const MatNode* n = e.node;
  // Transpose swaps the off-diagonal quadrants; conjugation recurses.
  std::array<MatEdge, 4> succ;
  succ[0] = ct_rec(n->succ[0]);
  succ[1] = ct_rec(n->succ[2]);
  succ[2] = ct_rec(n->succ[1]);
  succ[3] = ct_rec(n->succ[3]);
  const MatEdge unit = make_mat_node(n->var, succ);
  bound_cache(ct_cache_);
  ct_cache_.emplace(n, unit);
  return MatEdge{unit.node, ctab_.mul(ctab_.conj(e.weight), unit.weight)};
}

Complex Package::trace(MatEdge e) {
  std::unordered_map<const MatNode*, Complex> memo;
  return trace_rec(e, static_cast<std::int64_t>(num_qubits_) - 1, memo);
}

Complex Package::trace_rec(
    MatEdge e, std::int64_t level,
    std::unordered_map<const MatNode*, Complex>& memo) {
  if (e.is_zero()) {
    return Complex{};
  }
  const Complex w = ctab_.get(e.weight);
  if (level < 0) {
    return w;
  }
  if (const auto it = memo.find(e.node); it != memo.end()) {
    return w * it->second;
  }
  const Complex sub = trace_rec(e.node->succ[0], level - 1, memo) +
                      trace_rec(e.node->succ[3], level - 1, memo);
  memo.emplace(e.node, sub);
  return w * sub;
}

bool Package::is_identity(MatEdge e) {
  const MatEdge id = identity();
  return e.node == id.node && ctab_.is_one(e.weight);
}

bool Package::is_identity_up_to_global_phase(MatEdge e) {
  const MatEdge id = identity();
  return e.node == id.node &&
         approx_equal(std::abs(ctab_.get(e.weight)), 1.0);
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

namespace {

template <std::size_t N>
void count_nodes(const Node<N>* n,
                 std::unordered_set<const Node<N>*>& seen) {
  if (n == nullptr || seen.contains(n)) {
    return;
  }
  seen.insert(n);
  for (const auto& e : n->succ) {
    count_nodes(e.node, seen);
  }
}

}  // namespace

std::size_t Package::node_count(VecEdge e) const {
  std::unordered_set<const VecNode*> seen;
  count_nodes(e.node, seen);
  return seen.size();
}

std::size_t Package::node_count(MatEdge e) const {
  std::unordered_set<const MatNode*> seen;
  count_nodes(e.node, seen);
  return seen.size();
}

PackageStats Package::stats() const {
  PackageStats s;
  s.unique_vec_nodes = vec_unique_.size();
  s.unique_mat_nodes = mat_unique_.size();
  s.free_vec_nodes = vec_free_.size();
  s.free_mat_nodes = mat_free_.size();
  s.complex_values = ctab_.live_size();
  s.cache_hits = cache_hits_;
  s.cache_lookups = cache_lookups_;
  s.gc_runs = gc_runs_;
  s.gc_freed_nodes = gc_freed_nodes_;
  return s;
}

void Package::clear_caches() {
  g_cache_clears.add();
  vec_add_cache_.clear();
  mat_add_cache_.clear();
  mv_cache_.clear();
  mm_cache_.clear();
  ip_cache_.clear();
  ct_cache_.clear();
}

}  // namespace qdt::dd
