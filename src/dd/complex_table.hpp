// Interning table for complex edge weights — the answer to "how to
// efficiently handle complex values?" [29].
//
// Decision-diagram canonicity requires that two numerically equal weights be
// *the same object*, otherwise equal subtrees hash differently and no
// sharing happens. The table maps every complex value to a small integer
// index; values within the tolerance land on the same index. Lookup is
// bucketed: each component is keyed by round(v / bucket) and the 3x3
// neighborhood of buckets is searched, so values straddling a bucket border
// still unify.
//
// Garbage collection: entries referenced only by freed DD nodes would be
// immortal otherwise, so the table participates in Package::collect_garbage.
// Root-edge weights are pinned (pin/unpin refcounts) while a DD is
// ref-protected; sweep(keep) recycles every unpinned index the package no
// longer mentions. The sweep is non-compacting — indices are stable, dead
// slots go on a free list and are reused by the next lookup — so live
// indices held anywhere (nodes, root edges) never dangle or get remapped.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/eps.hpp"

namespace qdt::dd {

class ComplexTable {
 public:
  using Index = std::uint32_t;

  /// Index 0 is always 0+0i and index 1 is always 1+0i.
  static constexpr Index kZero = 0;
  static constexpr Index kOne = 1;

  ComplexTable();

  /// Index of `c`, creating an entry (or recycling a swept slot) if no value
  /// within tolerance exists.
  Index lookup(const Complex& c);

  Complex get(Index i) const { return values_[i]; }

  /// Total slots, live and dead (the valid index range).
  std::size_t size() const { return values_.size(); }
  /// Slots currently holding an interned value.
  std::size_t live_size() const { return values_.size() - free_.size(); }

  // -- Index-level arithmetic (results re-interned) -------------------------
  Index mul(Index a, Index b);
  Index add(Index a, Index b);
  Index div(Index a, Index b);
  Index conj(Index a);
  Index neg(Index a);

  bool is_zero(Index a) const { return a == kZero; }
  bool is_one(Index a) const { return a == kOne; }

  /// |value|^2 without re-interning.
  double norm2(Index a) const;

  /// True if the two indexed values have equal modulus (within tolerance) —
  /// the global-phase-insensitive comparison used by equivalence checking.
  bool equal_modulus(Index a, Index b) const;

  // -- Garbage-collection protocol ------------------------------------------
  /// Pin/unpin an index against sweeping (root-edge weights). kZero/kOne are
  /// permanent and ignore pins; counts saturate at UINT32_MAX (pinned
  /// forever). unpin below zero throws Error(Internal) — it means a
  /// dec_ref without a matching inc_ref.
  void pin(Index i);
  void unpin(Index i);
  std::uint32_t pin_count(Index i) const { return pins_[i]; }

  /// True when the slot has been swept and not yet recycled.
  bool is_dead(Index i) const { return dead_[i] != 0; }

  /// Set keep[i] = 1 for every pinned index (keep must be sized size()).
  void mark_pinned(std::vector<char>& keep) const;

  /// Recycle every index with keep[i] == 0 (kZero/kOne are always kept):
  /// the slot leaves its bucket, joins the free list, and will be reused by
  /// a future lookup. Indices are stable — no compaction, no remapping.
  /// Returns the number of slots freed.
  std::size_t sweep(const std::vector<char>& keep);

  /// Back to the freshly-constructed two-entry state, keeping allocated
  /// capacity (pooled-package reuse: the daemon's RSS must stay flat).
  void reset();

 private:
  struct Key {
    std::int64_t re;
    std::int64_t im;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::int64_t>{}(k.re) * 0x9E3779B97F4A7C15ULL +
             std::hash<std::int64_t>{}(k.im);
    }
  };

  Key key_of(const Complex& c) const;

  std::vector<Complex> values_;
  std::vector<std::uint32_t> pins_;  // parallel to values_
  std::vector<char> dead_;           // parallel to values_
  std::vector<Index> free_;          // swept slots awaiting reuse
  std::unordered_map<Key, std::vector<Index>, KeyHash> buckets_;
};

}  // namespace qdt::dd
