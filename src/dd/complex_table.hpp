// Interning table for complex edge weights — the answer to "how to
// efficiently handle complex values?" [29].
//
// Decision-diagram canonicity requires that two numerically equal weights be
// *the same object*, otherwise equal subtrees hash differently and no
// sharing happens. The table maps every complex value to a small integer
// index; values within the tolerance land on the same index. Lookup is
// bucketed: each component is keyed by round(v / bucket) and the 3x3
// neighborhood of buckets is searched, so values straddling a bucket border
// still unify.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/eps.hpp"

namespace qdt::dd {

class ComplexTable {
 public:
  using Index = std::uint32_t;

  /// Index 0 is always 0+0i and index 1 is always 1+0i.
  static constexpr Index kZero = 0;
  static constexpr Index kOne = 1;

  ComplexTable();

  /// Index of `c`, creating an entry if no value within tolerance exists.
  Index lookup(const Complex& c);

  Complex get(Index i) const { return values_[i]; }

  std::size_t size() const { return values_.size(); }

  // -- Index-level arithmetic (results re-interned) -------------------------
  Index mul(Index a, Index b);
  Index add(Index a, Index b);
  Index div(Index a, Index b);
  Index conj(Index a);
  Index neg(Index a);

  bool is_zero(Index a) const { return a == kZero; }
  bool is_one(Index a) const { return a == kOne; }

  /// |value|^2 without re-interning.
  double norm2(Index a) const;

  /// True if the two indexed values have equal modulus (within tolerance) —
  /// the global-phase-insensitive comparison used by equivalence checking.
  bool equal_modulus(Index a, Index b) const;

 private:
  struct Key {
    std::int64_t re;
    std::int64_t im;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::int64_t>{}(k.re) * 0x9E3779B97F4A7C15ULL +
             std::hash<std::int64_t>{}(k.im);
    }
  };

  Key key_of(const Complex& c) const;

  std::vector<Complex> values_;
  std::unordered_map<Key, std::vector<Index>, KeyHash> buckets_;
};

}  // namespace qdt::dd
