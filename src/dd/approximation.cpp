#include "dd/approximation.hpp"

#include <algorithm>
#include <functional>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace qdt::dd {

namespace {

struct EdgeRef {
  const VecNode* node;
  std::size_t child;
  double mass;  // probability flowing through this edge
  bool operator==(const EdgeRef&) const = default;
};

struct EdgeRefHash {
  std::size_t operator()(const std::pair<const VecNode*, std::size_t>& e)
      const {
    return std::hash<const void*>{}(e.first) * 2 + e.second;
  }
};

/// Squared L2 norm of each subtree (terminal = 1).
double subtree_norm(const ComplexTable& ctab, const VecNode* n,
                    std::unordered_map<const VecNode*, double>& memo) {
  if (n == nullptr) {
    return 1.0;
  }
  if (const auto it = memo.find(n); it != memo.end()) {
    return it->second;
  }
  double s = 0.0;
  for (const auto& e : n->succ) {
    if (!e.is_zero()) {
      s += ctab.norm2(e.weight) * subtree_norm(ctab, e.node, memo);
    }
  }
  memo.emplace(n, s);
  return s;
}

}  // namespace

ApproxResult approximate(Package& pkg, VecEdge state, double budget) {
  // The memos below hold raw node pointers and no collection safe point is
  // reached inside this function (make_vec_node only *arms* GC) — but the
  // input root is protected for the duration anyway, so an armed
  // collection at the caller's next safe point cannot sweep the original
  // state out from under a caller comparing it against the approximation.
  struct RootGuard {
    Package& p;
    VecEdge e;
    ~RootGuard() { p.dec_ref(e); }
  };
  pkg.inc_ref(state);
  const RootGuard guard{pkg, state};

  ApproxResult res;
  res.state = state;
  res.nodes_before = pkg.node_count(state);
  res.nodes_after = res.nodes_before;
  if (state.is_zero() || budget <= 0.0) {
    return res;
  }
  auto& ctab = pkg.ctab();

  // Upward norms.
  std::unordered_map<const VecNode*, double> norms;
  subtree_norm(ctab, state.node, norms);

  // Downward masses, visiting nodes top-down in topological order (sorted
  // by level descending — parents have strictly larger var).
  std::unordered_map<std::pair<const VecNode*, std::size_t>, double,
                     EdgeRefHash>
      edge_mass;
  std::unordered_map<const VecNode*, double> node_mass;
  {
    // Collect nodes and sort by var descending.
    std::vector<const VecNode*> order;
    std::unordered_set<const VecNode*> seen;
    const std::function<void(const VecNode*)> collect =
        [&](const VecNode* n) {
          if (n == nullptr || seen.contains(n)) {
            return;
          }
          seen.insert(n);
          order.push_back(n);
          for (const auto& e : n->succ) {
            collect(e.node);
          }
        };
    collect(state.node);
    std::sort(order.begin(), order.end(),
              [](const VecNode* a, const VecNode* b) {
                return a->var > b->var;
              });
    node_mass[state.node] = 1.0;  // assume a normalized input state
    // Walk top-down (parents have strictly larger var than children, so
    // a node's full incoming mass is known before it is visited).
    for (const VecNode* n : order) {
      const double incoming = node_mass[n];
      const double total = norms.at(n);
      if (total <= 0.0) {
        continue;
      }
      for (std::size_t i = 0; i < 2; ++i) {
        const auto& e = n->succ[i];
        if (e.is_zero()) {
          continue;
        }
        const double share =
            incoming * ctab.norm2(e.weight) *
            (e.node == nullptr ? 1.0 : norms.at(e.node)) / total;
        edge_mass[{n, i}] += share;
        if (e.node != nullptr) {
          node_mass[e.node] += share;
        }
      }
    }
  }

  // Pick the smallest-mass edges while staying within the budget.
  std::vector<EdgeRef> edges;
  edges.reserve(edge_mass.size());
  for (const auto& [key, mass] : edge_mass) {
    edges.push_back(EdgeRef{key.first, key.second, mass});
  }
  std::sort(edges.begin(), edges.end(),
            [](const EdgeRef& a, const EdgeRef& b) {
              return a.mass < b.mass;
            });
  std::unordered_set<std::pair<const VecNode*, std::size_t>, EdgeRefHash>
      removed;
  double cum = 0.0;
  for (const auto& e : edges) {
    if (cum + e.mass > budget) {
      break;
    }
    cum += e.mass;
    removed.insert({e.node, e.child});
  }
  if (removed.empty()) {
    return res;
  }

  // Rebuild the DD with the selected edges zeroed out.
  std::unordered_map<const VecNode*, VecEdge> rebuilt;
  const std::function<VecEdge(const VecNode*)> rebuild =
      [&](const VecNode* n) -> VecEdge {
    if (const auto it = rebuilt.find(n); it != rebuilt.end()) {
      return it->second;
    }
    std::array<VecEdge, 2> children;
    for (std::size_t i = 0; i < 2; ++i) {
      const auto& e = n->succ[i];
      if (e.is_zero() || removed.contains({n, i})) {
        children[i] = VecEdge::zero();
        continue;
      }
      if (e.is_terminal()) {
        children[i] = e;
      } else {
        const VecEdge sub = rebuild(e.node);
        children[i] =
            VecEdge{sub.node, ctab.mul(e.weight, sub.weight)};
      }
    }
    const VecEdge out = pkg.make_vec_node(n->var, children[0], children[1]);
    rebuilt.emplace(n, out);
    return out;
  };
  const VecEdge core = rebuild(state.node);
  VecEdge approx{core.node, ctab.mul(state.weight, core.weight)};

  const double remaining = pkg.norm2(approx);
  if (remaining <= 0.0) {
    return res;  // refuse to approximate away the whole state
  }
  // Renormalize.
  approx.weight = ctab.mul(
      approx.weight,
      ctab.lookup(Complex{1.0 / std::sqrt(remaining), 0.0}));

  res.fidelity = std::norm(pkg.inner_product(approx, state));
  res.state = approx;
  res.nodes_after = pkg.node_count(approx);
  res.edges_removed = removed.size();
  return res;
}

}  // namespace qdt::dd
