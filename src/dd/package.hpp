// The decision-diagram package: hash-consed construction of vector and
// matrix DDs plus the operations the design tasks need (addition,
// matrix-vector and matrix-matrix multiplication, inner products,
// projection, conjugate-transpose), all with operation caching.
//
// Follows the QMDD line of work [28], [29]: nodes are normalized so the
// largest-magnitude outgoing weight is 1, equal subtrees are shared through
// a unique table, and edge weights are interned complex numbers.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "dd/complex_table.hpp"
#include "dd/node.hpp"
#include "ir/operation.hpp"

namespace qdt::dd {

/// Aggregate size statistics (see Package::stats).
struct PackageStats {
  std::size_t unique_vec_nodes = 0;
  std::size_t unique_mat_nodes = 0;
  std::size_t complex_values = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_lookups = 0;
};

class Package {
 public:
  explicit Package(std::size_t num_qubits);

  std::size_t num_qubits() const { return num_qubits_; }
  ComplexTable& ctab() { return ctab_; }
  const ComplexTable& ctab() const { return ctab_; }

  // -- Vector DDs ------------------------------------------------------------
  /// Normalized, hash-consed node; returns the canonical edge.
  VecEdge make_vec_node(std::uint32_t var, VecEdge e0, VecEdge e1);

  /// |0...0>.
  VecEdge zero_state();
  /// Computational basis state |index>.
  VecEdge basis_state(std::uint64_t index);
  /// DD of an arbitrary dense state vector (size 2^n).
  VecEdge from_vector(const std::vector<Complex>& amplitudes);
  /// Dense readout (exponential; for tests and small n).
  std::vector<Complex> to_vector(VecEdge e) const;
  /// Single amplitude <index|e> via one root-to-terminal path walk.
  Complex amplitude(VecEdge e, std::uint64_t index) const;

  VecEdge add(VecEdge a, VecEdge b);
  Complex inner_product(VecEdge a, VecEdge b);
  double norm2(VecEdge e);

  /// Zero out the branch of qubit q that differs from `bit` (unnormalized
  /// projector application).
  VecEdge project(VecEdge e, ir::Qubit q, bool bit);

  /// Probability that measuring qubit q on (normalized) state e yields 1.
  double prob_one(VecEdge e, ir::Qubit q);

  /// Sample a basis state from the (normalized) state without reading out
  /// the full vector ("weak simulation").
  std::uint64_t sample(VecEdge e, Rng& rng);

  // -- Matrix DDs ------------------------------------------------------------
  MatEdge make_mat_node(std::uint32_t var, std::array<MatEdge, 4> succ);

  MatEdge identity();
  /// DD of a (possibly multi-controlled) catalogue operation.
  MatEdge gate_dd(const ir::Operation& op);
  /// DD of an arbitrary 2x2 matrix applied to `target` under positive
  /// `controls` (identity elsewhere). Works for non-unitary matrices too
  /// (used by the stochastic-noise simulator).
  MatEdge single_qubit_dd(const Mat2& m, ir::Qubit target,
                          const std::vector<ir::Qubit>& controls = {});
  /// DD of a dense 2^n x 2^n matrix (for tests; exponential input).
  MatEdge from_matrix(const std::vector<Complex>& row_major);
  std::vector<Complex> to_matrix(MatEdge e) const;

  MatEdge multiply(MatEdge a, MatEdge b);
  VecEdge multiply(MatEdge m, VecEdge v);
  MatEdge add(MatEdge a, MatEdge b);
  MatEdge conjugate_transpose(MatEdge e);

  /// Trace of a matrix DD (sum of the diagonal), in O(nodes).
  Complex trace(MatEdge e);

  /// True if e is the identity times a unit-modulus scalar.
  bool is_identity_up_to_global_phase(MatEdge e);
  /// True if e is exactly the identity (weight 1).
  bool is_identity(MatEdge e);

  // -- Introspection ----------------------------------------------------------
  /// Number of distinct nodes reachable from e (excluding the terminal).
  std::size_t node_count(VecEdge e) const;
  std::size_t node_count(MatEdge e) const;

  PackageStats stats() const;

  /// Drop all operation caches (unique tables are kept). Call between
  /// independent computations to bound memory.
  void clear_caches();

 private:
  // Recursion helpers carry the current level explicitly because zero edges
  // jump straight to the terminal.
  VecEdge add_rec(VecEdge a, VecEdge b, std::int64_t level);
  MatEdge add_rec(MatEdge a, MatEdge b, std::int64_t level);
  VecEdge mul_rec(MatEdge a, VecEdge b, std::int64_t level);
  MatEdge mul_rec(MatEdge a, MatEdge b, std::int64_t level);
  Complex ip_rec(VecEdge a, VecEdge b, std::int64_t level);
  MatEdge ct_rec(MatEdge e);
  VecEdge project_rec(VecEdge e, ir::Qubit q, bool bit,
                      std::unordered_map<const VecNode*, VecEdge>& memo);
  Complex trace_rec(MatEdge e, std::int64_t level,
                    std::unordered_map<const MatNode*, Complex>& memo);
  double subtree_norm2(const VecNode* n,
                       std::unordered_map<const VecNode*, double>& memo);

  VecEdge from_vector_rec(const Complex* data, std::int64_t level,
                          std::size_t stride);
  MatEdge from_matrix_rec(const std::vector<Complex>& m, std::size_t dim,
                          std::size_t row, std::size_t col,
                          std::int64_t level);

  std::size_t num_qubits_;
  ComplexTable ctab_;

  std::deque<VecNode> vec_storage_;
  std::deque<MatNode> mat_storage_;
  std::unordered_map<VecNode, const VecNode*, NodeHash<2>> vec_unique_;
  std::unordered_map<MatNode, const MatNode*, NodeHash<4>> mat_unique_;

  // Operation caches. Keys hold canonical node pointers + interned weights,
  // so equality is exact. Addition keys use the *ratio* of the operand
  // weights (add(w1 A, w2 B) = w1 (A + (w2/w1) B)): absolute-weight keys
  // would make path-dependent phase products (QFT states!) miss the cache
  // on every path and blow the recursion up to 2^n.
  template <typename EdgeT>
  struct AddKey {
    const void* a;
    const void* b;
    std::uint32_t ratio;
    bool operator==(const AddKey&) const = default;
  };
  template <typename EdgeT>
  struct AddKeyHash {
    std::size_t operator()(const AddKey<EdgeT>& k) const {
      std::size_t h = std::hash<const void*>{}(k.a);
      h = h * 0x100000001B3ULL ^ std::hash<const void*>{}(k.b);
      h = h * 0x100000001B3ULL ^ std::hash<std::uint32_t>{}(k.ratio);
      return h;
    }
  };
  struct PairKey {
    const void* a;
    const void* b;
    bool operator==(const PairKey&) const = default;
  };
  struct PairKeyHash {
    std::size_t operator()(const PairKey& k) const {
      return std::hash<const void*>{}(k.a) * 0x9E3779B97F4A7C15ULL ^
             std::hash<const void*>{}(k.b);
    }
  };

  std::unordered_map<AddKey<VecEdge>, VecEdge, AddKeyHash<VecEdge>>
      vec_add_cache_;
  std::unordered_map<AddKey<MatEdge>, MatEdge, AddKeyHash<MatEdge>>
      mat_add_cache_;
  std::unordered_map<PairKey, VecEdge, PairKeyHash> mv_cache_;
  std::unordered_map<PairKey, MatEdge, PairKeyHash> mm_cache_;
  std::unordered_map<PairKey, Complex, PairKeyHash> ip_cache_;
  std::unordered_map<const MatNode*, MatEdge> ct_cache_;

  mutable std::size_t cache_hits_ = 0;
  mutable std::size_t cache_lookups_ = 0;
};

}  // namespace qdt::dd
