// The decision-diagram package: hash-consed construction of vector and
// matrix DDs plus the operations the design tasks need (addition,
// matrix-vector and matrix-matrix multiplication, inner products,
// projection, conjugate-transpose), all with operation caching.
//
// Follows the QMDD line of work [28], [29]: nodes are normalized so the
// largest-magnitude outgoing weight is 1, equal subtrees are shared through
// a unique table, and edge weights are interned complex numbers.
//
// Memory governance (arXiv:2108.07027 package design): nodes carry reference
// counts maintained at the *root-edge* level — inc_ref(edge) pins the root
// weight and bumps the target node, recursing into children on the 0 -> 1
// transition; dec_ref is the exact mirror. collect_garbage() sweeps every
// node with ref == 0 out of the unique tables onto per-type free lists that
// make_vec_node / make_mat_node reuse, prunes exactly the compute-cache
// lines that mention a freed node (so no stale pointer survives to be
// falsely hit after slot reuse), and sweeps the complex table. Collection
// never happens inside an operation — make_* only *arms* it (table fill,
// gc_threshold, guard memory pressure); drivers call maybe_collect_garbage()
// between gates, where every live root is ref-protected, so at a safe point
// ref == 0 is exactly "garbage".
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "dd/complex_table.hpp"
#include "dd/node.hpp"
#include "ir/operation.hpp"

namespace qdt::dd {

/// Tunable bounds on a package's tables and caches. Settable per package,
/// per thread (ScopedPackageConfig), or process-wide (QDT_DD_TABLE_MB /
/// --dd-table-mb fold into the global default).
struct PackageConfig {
  /// Hard ceiling on the *live* table footprint in MiB; 0 = unbounded.
  /// Crossing it arms a collection; if the live set still exceeds it at the
  /// next safe point the package throws Error(ResourceExhausted, DdNodes).
  std::size_t unique_table_mb = 0;
  /// Per-compute-cache entry cap; a full cache is cleared wholesale
  /// (counted by qdt.dd.cache.evictions). 0 = unbounded.
  std::size_t cache_entries = std::size_t{1} << 18;
  /// Live-node count that arms garbage collection. 0 disables the
  /// count-based trigger entirely (the "gc_threshold = infinity" mode the
  /// bitwise-identity tests compare against); pressure and table-fill
  /// triggers are still armed when their own bounds are set.
  std::size_t gc_threshold = std::size_t{1} << 16;
};

/// Process-wide default config (mutex-protected; QDT_DD_TABLE_MB is folded
/// in once on first read).
PackageConfig default_package_config();
void set_default_package_config(const PackageConfig& cfg);

/// The config a new Package (or Package::reset) picks up on this thread:
/// the innermost ScopedPackageConfig override, else the global default.
PackageConfig current_package_config();

/// RAII thread-local override of current_package_config() — how the chaos
/// fuzzer forces tiny gc thresholds per case without touching the global
/// default other threads read.
class ScopedPackageConfig {
 public:
  explicit ScopedPackageConfig(const PackageConfig& cfg);
  ~ScopedPackageConfig();
  ScopedPackageConfig(const ScopedPackageConfig&) = delete;
  ScopedPackageConfig& operator=(const ScopedPackageConfig&) = delete;

 private:
  PackageConfig cfg_;
  const PackageConfig* prev_;
};

/// Aggregate size statistics (see Package::stats).
struct PackageStats {
  std::size_t unique_vec_nodes = 0;  // live (in the unique table)
  std::size_t unique_mat_nodes = 0;
  std::size_t free_vec_nodes = 0;  // swept, awaiting reuse
  std::size_t free_mat_nodes = 0;
  std::size_t complex_values = 0;  // live interned weights
  std::size_t cache_hits = 0;
  std::size_t cache_lookups = 0;
  std::size_t gc_runs = 0;
  std::size_t gc_freed_nodes = 0;
};

class Package {
 public:
  /// Uses current_package_config().
  explicit Package(std::size_t num_qubits);
  Package(std::size_t num_qubits, const PackageConfig& cfg);
  /// Debug-build (or QDT_DD_AUDIT=1) teardown audit: check_refs() must pass
  /// on every package at end of life; a violation prints to stderr and
  /// aborts, so no test scenario can leak a refcount bug silently.
  ~Package();
  Package(const Package&) = delete;
  Package& operator=(const Package&) = delete;

  std::size_t num_qubits() const { return num_qubits_; }
  const PackageConfig& config() const { return cfg_; }
  ComplexTable& ctab() { return ctab_; }
  const ComplexTable& ctab() const { return ctab_; }

  /// Back to a freshly-constructed package for `num_qubits`, keeping every
  /// allocation: tables/caches empty, all node slots on the free lists, the
  /// complex table reset in place, config re-read from
  /// current_package_config(). This is what keeps a pooled per-request
  /// package's RSS flat across a long-running daemon's lifetime.
  void reset(std::size_t num_qubits);

  // -- Reference counting / garbage collection -------------------------------
  /// Protect a root edge across collections: pins the root weight in the
  /// complex table and increments the target node (recursively incrementing
  /// children on the 0 -> 1 transition). Safe on terminal/zero edges.
  void inc_ref(VecEdge e);
  void inc_ref(MatEdge e);
  /// Exact mirror of inc_ref. Underflow throws Error(Internal) — it means a
  /// dec_ref without a matching inc_ref.
  void dec_ref(VecEdge e);
  void dec_ref(MatEdge e);

  /// Sweep every ref == 0 node out of the unique tables onto the free
  /// lists, drop exactly the cache lines that mention a freed node, then
  /// (when `reclaim_weights`) sweep complex-table entries no surviving
  /// node, cache line, or pin mentions. Returns the number of nodes freed.
  /// Callers must hold inc_ref on every root they intend to keep (the
  /// operation drivers do — see maybe_collect_garbage).
  ///
  /// Routine (count-triggered) collections pass reclaim_weights = false:
  /// interned weights double as the tolerance-interning *representatives*,
  /// and evicting a dead one lets a later value within kEps intern as
  /// itself instead of snapping to the historical representative — an
  /// ulp-level drift that breaks the bitwise GC-on == GC-off guarantee
  /// (caught by the chaos fuzzer's differential oracle). Node-only sweeps
  /// are drift-free: recomputed products of the same interned operands are
  /// bitwise equal to what the pruned cache lines held. Weights are
  /// reclaimed when memory actually matters — pressure- or table-bound-
  /// driven collections, explicit calls, and reset().
  std::size_t collect_garbage(bool reclaim_weights = true);

  /// Collect if a trigger armed gc_pending() — the safe-point entry the
  /// simulation drivers call between gates, where all live roots are
  /// ref-protected. After collecting, enforces the unique_table_mb hard
  /// bound: still over means the *live* set does not fit, and the package
  /// throws Error(ResourceExhausted, DdNodes) — collect-then-continue,
  /// degrade only when collection was not enough. Returns true if a
  /// collection ran.
  bool maybe_collect_garbage();

  /// True when a trigger (table fill, gc_threshold, guard pressure, or an
  /// explicit request_gc) has armed a collection for the next safe point.
  bool gc_pending() const { return gc_pending_; }
  void request_gc() { gc_pending_ = true; }

  /// Nodes currently in the unique tables (the live set).
  std::size_t live_nodes() const {
    return vec_unique_.size() + mat_unique_.size();
  }

  /// Approximate bytes held by storage, tables, and caches (capacity, not
  /// live footprint — pooled packages keep this flat after warm-up).
  std::size_t footprint_bytes() const;

  /// Refcount audit: verifies storage = table + free lists, per-node
  /// refcounts against the in-degree induced by live parents, that live
  /// nodes never point at freed nodes or swept weights, and complex-table
  /// pin sanity. Throws Error(Internal) naming the first violation.
  void check_refs() const;

  // -- Vector DDs ------------------------------------------------------------
  /// Normalized, hash-consed node; returns the canonical edge.
  VecEdge make_vec_node(std::uint32_t var, VecEdge e0, VecEdge e1);

  /// |0...0>.
  VecEdge zero_state();
  /// Computational basis state |index>.
  VecEdge basis_state(std::uint64_t index);
  /// DD of an arbitrary dense state vector (size 2^n).
  VecEdge from_vector(const std::vector<Complex>& amplitudes);
  /// Dense readout (exponential; for tests and small n).
  std::vector<Complex> to_vector(VecEdge e) const;
  /// Single amplitude <index|e> via one root-to-terminal path walk.
  Complex amplitude(VecEdge e, std::uint64_t index) const;

  VecEdge add(VecEdge a, VecEdge b);
  Complex inner_product(VecEdge a, VecEdge b);
  double norm2(VecEdge e);

  /// Zero out the branch of qubit q that differs from `bit` (unnormalized
  /// projector application).
  VecEdge project(VecEdge e, ir::Qubit q, bool bit);

  /// Probability that measuring qubit q on (normalized) state e yields 1.
  double prob_one(VecEdge e, ir::Qubit q);

  /// Sample a basis state from the (normalized) state without reading out
  /// the full vector ("weak simulation").
  std::uint64_t sample(VecEdge e, Rng& rng);

  // -- Matrix DDs ------------------------------------------------------------
  MatEdge make_mat_node(std::uint32_t var, std::array<MatEdge, 4> succ);

  MatEdge identity();
  /// DD of a (possibly multi-controlled) catalogue operation.
  MatEdge gate_dd(const ir::Operation& op);
  /// DD of an arbitrary 2x2 matrix applied to `target` under positive
  /// `controls` (identity elsewhere). Works for non-unitary matrices too
  /// (used by the stochastic-noise simulator).
  MatEdge single_qubit_dd(const Mat2& m, ir::Qubit target,
                          const std::vector<ir::Qubit>& controls = {});
  /// DD of a dense 2^n x 2^n matrix (for tests; exponential input).
  MatEdge from_matrix(const std::vector<Complex>& row_major);
  std::vector<Complex> to_matrix(MatEdge e) const;

  MatEdge multiply(MatEdge a, MatEdge b);
  VecEdge multiply(MatEdge m, VecEdge v);
  MatEdge add(MatEdge a, MatEdge b);
  MatEdge conjugate_transpose(MatEdge e);

  /// Trace of a matrix DD (sum of the diagonal), in O(nodes).
  Complex trace(MatEdge e);

  /// True if e is the identity times a unit-modulus scalar.
  bool is_identity_up_to_global_phase(MatEdge e);
  /// True if e is exactly the identity (weight 1).
  bool is_identity(MatEdge e);

  // -- Introspection ----------------------------------------------------------
  /// Number of distinct nodes reachable from e (excluding the terminal).
  std::size_t node_count(VecEdge e) const;
  std::size_t node_count(MatEdge e) const;

  PackageStats stats() const;

  /// Drop all operation caches (unique tables are kept). Call between
  /// independent computations to bound memory.
  void clear_caches();

 private:
  // Recursion helpers carry the current level explicitly because zero edges
  // jump straight to the terminal.
  VecEdge add_rec(VecEdge a, VecEdge b, std::int64_t level);
  MatEdge add_rec(MatEdge a, MatEdge b, std::int64_t level);
  VecEdge mul_rec(MatEdge a, VecEdge b, std::int64_t level);
  MatEdge mul_rec(MatEdge a, MatEdge b, std::int64_t level);
  Complex ip_rec(VecEdge a, VecEdge b, std::int64_t level);
  MatEdge ct_rec(MatEdge e);
  VecEdge project_rec(VecEdge e, ir::Qubit q, bool bit,
                      std::unordered_map<const VecNode*, VecEdge>& memo);
  Complex trace_rec(MatEdge e, std::int64_t level,
                    std::unordered_map<const MatNode*, Complex>& memo);
  double subtree_norm2(const VecNode* n,
                       std::unordered_map<const VecNode*, double>& memo);

  VecEdge from_vector_rec(const Complex* data, std::int64_t level,
                          std::size_t stride);
  MatEdge from_matrix_rec(const std::vector<Complex>& m, std::size_t dim,
                          std::size_t row, std::size_t col,
                          std::int64_t level);

  void inc_node_ref(const VecNode* n);
  void inc_node_ref(const MatNode* n);
  void dec_node_ref(const VecNode* n);
  void dec_node_ref(const MatNode* n);

  /// Post-allocation bookkeeping: guard checkpoints on the live counts and
  /// (sampled) byte footprint, and arming of gc_pending_ when a bound or
  /// the guard pressure line is crossed. Never collects — that would sweep
  /// the caller's unprotected locals mid-operation.
  void note_allocation();

  /// Live-set footprint (tables + live weights only) — the quantity the
  /// unique_table_mb hard bound is checked against, because storage
  /// capacity never shrinks while free-listed nodes await reuse.
  std::size_t live_bytes() const;

  /// Clear a compute cache when it hits cfg_.cache_entries.
  template <typename Cache>
  void bound_cache(Cache& cache);

  std::size_t num_qubits_;
  PackageConfig cfg_;
  ComplexTable ctab_;

  std::deque<VecNode> vec_storage_;
  std::deque<MatNode> mat_storage_;
  std::unordered_map<VecNode, const VecNode*, NodeHash<2>> vec_unique_;
  std::unordered_map<MatNode, const MatNode*, NodeHash<4>> mat_unique_;
  // Swept node slots awaiting reuse by make_*_node. Nodes only move here
  // inside collect_garbage(), which first prunes every cache line that
  // mentions them — so a recycled slot can never be hit through a stale
  // cached pointer.
  std::vector<VecNode*> vec_free_;
  std::vector<MatNode*> mat_free_;

  bool gc_pending_ = false;
  // Armed alongside gc_pending_ when the trigger was memory pressure or
  // the table-byte bound: those collections also reclaim dead weights
  // (see collect_garbage on why routine collections must not).
  bool gc_arm_full_ = false;
  std::size_t gc_live_trigger_ = 0;  // live-node count arming the next gc
  // Hysteresis for the guard-pressure trigger: do not consult pressure
  // again until the live set regrows past this (raised after each
  // collection). The initial floor keeps guard::pressure's thread-local
  // walk off the allocation hot path for small diagrams — a package under
  // 1k nodes cannot meaningfully relieve memory pressure, and the hard
  // check_dd_nodes() ceiling still applies from the first allocation.
  std::size_t gc_pressure_floor_ = 1024;
  std::size_t gc_runs_ = 0;
  std::size_t gc_freed_nodes_ = 0;
  std::uint64_t alloc_tick_ = 0;  // drives the sampled byte/deadline checks

  // Operation caches. Keys hold canonical node pointers + interned weights,
  // so equality is exact. Addition keys use the *ratio* of the operand
  // weights (add(w1 A, w2 B) = w1 (A + (w2/w1) B)): absolute-weight keys
  // would make path-dependent phase products (QFT states!) miss the cache
  // on every path and blow the recursion up to 2^n.
  template <typename EdgeT>
  struct AddKey {
    const void* a;
    const void* b;
    std::uint32_t ratio;
    bool operator==(const AddKey&) const = default;
  };
  template <typename EdgeT>
  struct AddKeyHash {
    std::size_t operator()(const AddKey<EdgeT>& k) const {
      std::size_t h = std::hash<const void*>{}(k.a);
      h = h * 0x100000001B3ULL ^ std::hash<const void*>{}(k.b);
      h = h * 0x100000001B3ULL ^ std::hash<std::uint32_t>{}(k.ratio);
      return h;
    }
  };
  struct PairKey {
    const void* a;
    const void* b;
    bool operator==(const PairKey&) const = default;
  };
  struct PairKeyHash {
    std::size_t operator()(const PairKey& k) const {
      return std::hash<const void*>{}(k.a) * 0x9E3779B97F4A7C15ULL ^
             std::hash<const void*>{}(k.b);
    }
  };

  std::unordered_map<AddKey<VecEdge>, VecEdge, AddKeyHash<VecEdge>>
      vec_add_cache_;
  std::unordered_map<AddKey<MatEdge>, MatEdge, AddKeyHash<MatEdge>>
      mat_add_cache_;
  std::unordered_map<PairKey, VecEdge, PairKeyHash> mv_cache_;
  std::unordered_map<PairKey, MatEdge, PairKeyHash> mm_cache_;
  std::unordered_map<PairKey, Complex, PairKeyHash> ip_cache_;
  std::unordered_map<const MatNode*, MatEdge> ct_cache_;

  mutable std::size_t cache_hits_ = 0;
  mutable std::size_t cache_lookups_ = 0;
};

}  // namespace qdt::dd
