#include "common/matrix.hpp"

#include <cmath>

namespace qdt {

Mat2 Mat2::identity() {
  Mat2 m;
  m(0, 0) = 1.0;
  m(1, 1) = 1.0;
  return m;
}

Mat2 Mat2::zero() { return Mat2{}; }

Mat2 Mat2::operator*(const Mat2& o) const {
  Mat2 r;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      r(i, j) = (*this)(i, 0) * o(0, j) + (*this)(i, 1) * o(1, j);
    }
  }
  return r;
}

Mat2 Mat2::operator*(const Complex& s) const {
  Mat2 r = *this;
  for (auto& v : r.e) {
    v *= s;
  }
  return r;
}

Mat2 Mat2::operator+(const Mat2& o) const {
  Mat2 r = *this;
  for (std::size_t i = 0; i < 4; ++i) {
    r.e[i] += o.e[i];
  }
  return r;
}

Mat2 Mat2::adjoint() const {
  Mat2 r;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      r(i, j) = std::conj((*this)(j, i));
    }
  }
  return r;
}

bool Mat2::is_unitary(double eps) const {
  const Mat2 p = *this * adjoint();
  return approx_equal(p, identity(), eps);
}

Mat4 Mat4::identity() {
  Mat4 m;
  for (std::size_t i = 0; i < 4; ++i) {
    m(i, i) = 1.0;
  }
  return m;
}

Mat4 Mat4::operator*(const Mat4& o) const {
  Mat4 r;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      Complex s = 0.0;
      for (std::size_t k = 0; k < 4; ++k) {
        s += (*this)(i, k) * o(k, j);
      }
      r(i, j) = s;
    }
  }
  return r;
}

Mat4 Mat4::adjoint() const {
  Mat4 r;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      r(i, j) = std::conj((*this)(j, i));
    }
  }
  return r;
}

bool Mat4::is_unitary(double eps) const {
  const Mat4 p = *this * adjoint();
  return approx_equal(p, identity(), eps);
}

Mat4 kron(const Mat2& a, const Mat2& b) {
  Mat4 r;
  for (std::size_t ar = 0; ar < 2; ++ar) {
    for (std::size_t ac = 0; ac < 2; ++ac) {
      for (std::size_t br = 0; br < 2; ++br) {
        for (std::size_t bc = 0; bc < 2; ++bc) {
          r((ar << 1) | br, (ac << 1) | bc) = a(ar, ac) * b(br, bc);
        }
      }
    }
  }
  return r;
}

bool approx_equal(const Mat2& a, const Mat2& b, double eps) {
  for (std::size_t i = 0; i < 4; ++i) {
    if (!approx_equal(a.e[i], b.e[i], eps)) {
      return false;
    }
  }
  return true;
}

bool approx_equal(const Mat4& a, const Mat4& b, double eps) {
  for (std::size_t i = 0; i < 16; ++i) {
    if (!approx_equal(a.e[i], b.e[i], eps)) {
      return false;
    }
  }
  return true;
}

bool equal_up_to_global_phase(const Mat2& a, const Mat2& b, double eps) {
  // Find the entry of b with the largest modulus to divide out the phase.
  std::size_t k = 0;
  double best = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (std::abs(b.e[i]) > best) {
      best = std::abs(b.e[i]);
      k = i;
    }
  }
  if (best <= eps) {
    return approx_equal(a, b, eps);
  }
  const Complex ratio = a.e[k] / b.e[k];
  if (std::abs(std::abs(ratio) - 1.0) > eps) {
    return false;
  }
  return approx_equal(a, b * ratio, eps);
}

}  // namespace qdt
