// Small fixed-size complex matrices: the exact semantics of every gate in
// the catalogue. Mat2 describes single-qubit gates, Mat4 two-qubit gates
// (row/column index bit 0 = first operand qubit, matching qdt's little-endian
// basis ordering).
#pragma once

#include <array>
#include <complex>
#include <cstddef>

#include "common/eps.hpp"

namespace qdt {

/// Dense 2x2 complex matrix, row-major: m[r][c] = entries[2*r + c].
struct Mat2 {
  std::array<Complex, 4> e{};

  Complex& operator()(std::size_t r, std::size_t c) { return e[2 * r + c]; }
  const Complex& operator()(std::size_t r, std::size_t c) const {
    return e[2 * r + c];
  }

  static Mat2 identity();
  static Mat2 zero();

  Mat2 operator*(const Mat2& o) const;
  Mat2 operator*(const Complex& s) const;
  Mat2 operator+(const Mat2& o) const;
  Mat2 adjoint() const;
  bool is_unitary(double eps = 1e-9) const;
};

/// Dense 4x4 complex matrix, row-major.
struct Mat4 {
  std::array<Complex, 16> e{};

  Complex& operator()(std::size_t r, std::size_t c) { return e[4 * r + c]; }
  const Complex& operator()(std::size_t r, std::size_t c) const {
    return e[4 * r + c];
  }

  static Mat4 identity();

  Mat4 operator*(const Mat4& o) const;
  Mat4 adjoint() const;
  bool is_unitary(double eps = 1e-9) const;
};

/// Kronecker product a (x) b: index bit layout (a_bit << 1) | b_bit, i.e. `b`
/// acts on the less significant qubit.
Mat4 kron(const Mat2& a, const Mat2& b);

bool approx_equal(const Mat2& a, const Mat2& b, double eps = kEps);
bool approx_equal(const Mat4& a, const Mat4& b, double eps = kEps);

/// True if a == c*b for some unit-modulus scalar c (equality up to global
/// phase, the physically meaningful notion for gate matrices).
bool equal_up_to_global_phase(const Mat2& a, const Mat2& b,
                              double eps = 1e-9);

}  // namespace qdt
