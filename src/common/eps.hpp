// Tolerance policy for approximate floating-point comparison.
//
// All four backends (arrays, decision diagrams, tensor networks, ZX scalars)
// accumulate rounding error through long chains of complex multiplications.
// A single shared tolerance keeps "equal" meaning the same thing everywhere:
// two values within kEps of each other are treated as one value.
#pragma once

#include <cmath>
#include <complex>

namespace qdt {

using Complex = std::complex<double>;

/// Global comparison tolerance. Chosen so that ~10^6 chained multiplications
/// of unit-magnitude complex numbers still compare correctly, while values
/// that differ by a physical amount (any amplitude of a <64-qubit basis
/// state) never unify.
inline constexpr double kEps = 1e-10;

/// True if |a - b| <= eps.
inline bool approx_equal(double a, double b, double eps = kEps) {
  return std::abs(a - b) <= eps;
}

/// True if both components are within eps.
inline bool approx_equal(const Complex& a, const Complex& b,
                         double eps = kEps) {
  return approx_equal(a.real(), b.real(), eps) &&
         approx_equal(a.imag(), b.imag(), eps);
}

/// True if the value is indistinguishable from zero.
inline bool approx_zero(double a, double eps = kEps) {
  return std::abs(a) <= eps;
}

inline bool approx_zero(const Complex& a, double eps = kEps) {
  return approx_zero(a.real(), eps) && approx_zero(a.imag(), eps);
}

/// True if the value is indistinguishable from one.
inline bool approx_one(const Complex& a, double eps = kEps) {
  return approx_equal(a, Complex{1.0, 0.0}, eps);
}

/// 1/sqrt(2), the most common amplitude in the whole code base.
inline const double kInvSqrt2 = 1.0 / std::sqrt(2.0);

}  // namespace qdt
