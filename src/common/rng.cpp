#include "common/rng.hpp"

#include <cmath>

#include "guard/error.hpp"

namespace qdt {

double Rng::uniform() {
  return std::uniform_real_distribution<double>{0.0, 1.0}(engine_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>{lo, hi}(engine_);
}

std::uint64_t Rng::index(std::uint64_t n) {
  if (n == 0) {
    // uniform_int_distribution{0, n - 1} underflows to the full uint64
    // range — UB by the standard and a silent wild index in practice.
    throw Error::bad_input("Rng::index: empty range (n == 0)");
  }
  return std::uniform_int_distribution<std::uint64_t>{0, n - 1}(engine_);
}

std::int64_t Rng::integer(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
}

double Rng::gaussian() {
  return std::normal_distribution<double>{0.0, 1.0}(engine_);
}

std::complex<double> Rng::gaussian_complex() {
  const double re = gaussian();
  const double im = gaussian();
  return {re, im};
}

std::vector<std::complex<double>> Rng::random_state(std::size_t dim) {
  std::vector<std::complex<double>> v(dim);
  double norm2 = 0.0;
  for (auto& a : v) {
    a = gaussian_complex();
    norm2 += std::norm(a);
  }
  const double inv = 1.0 / std::sqrt(norm2);
  for (auto& a : v) {
    a *= inv;
  }
  return v;
}

}  // namespace qdt
