// Deterministic random number generation.
//
// Every stochastic component in the library (measurement sampling, random
// circuit generation, noise injection) draws from a qdt::Rng constructed with
// an explicit seed, so all tests and benchmarks are reproducible bit-for-bit.
#pragma once

#include <complex>
#include <cstdint>
#include <random>
#include <vector>

namespace qdt {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xC0FFEEULL) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).
  std::uint64_t index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t integer(std::int64_t lo, std::int64_t hi);

  /// Fair coin flip.
  bool coin() { return index(2) == 1; }

  /// Standard normal deviate.
  double gaussian();

  /// Complex number with independent standard-normal components.
  std::complex<double> gaussian_complex();

  /// Haar-like random unit vector of the given dimension (Gaussian then
  /// normalized).
  std::vector<std::complex<double>> random_state(std::size_t dim);

  /// Underlying engine, for std::shuffle and friends.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace qdt
