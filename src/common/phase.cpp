#include "common/phase.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <numeric>
#include <ostream>
#include <stdexcept>

namespace qdt {

Phase::Phase(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  if (den == 0) {
    throw std::invalid_argument("Phase: zero denominator");
  }
  normalize();
}

void Phase::normalize() {
  if (den_ < 0) {
    den_ = -den_;
    num_ = -num_;
  }
  // Reduce to lowest terms first so the modulus below cannot overflow.
  const std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  // Bring num_/den_ into (-1, 1] (i.e. the angle into (-pi, pi]).
  const std::int64_t two_den = 2 * den_;
  num_ %= two_den;              // now in (-2den, 2den)
  if (num_ > den_) {            // (pi, 2pi) -> subtract 2pi
    num_ -= two_den;
  } else if (num_ <= -den_) {   // (-2pi, -pi] -> add 2pi
    num_ += two_den;
  }
  if (num_ == 0) {
    den_ = 1;
  }
  // Overflow guard: repeated addition of unrelated high-precision phases
  // can grow the denominator towards the int64 limit. Snap back to the
  // best approximation with den <= 2^30 (error ~2^-30 rad, far below the
  // library-wide numeric tolerance).
  if (den_ > (std::int64_t{1} << 30)) {
    *this = from_radians(radians());
  }
}

Phase Phase::from_radians(double radians, std::int64_t max_den) {
  const double turns = radians / std::numbers::pi;  // value in units of pi
  // Continued-fraction (Stern-Brocot) search for the best rational
  // approximation p/q of `turns` with q <= max_den.
  double x = turns;
  std::int64_t p0 = 0, q0 = 1, p1 = 1, q1 = 0;
  for (int iter = 0; iter < 64; ++iter) {
    const double a_floor = std::floor(x);
    if (a_floor > 9.0e15) {  // next convergent would overflow
      break;
    }
    const auto a = static_cast<std::int64_t>(a_floor);
    // Overflow-safe bound check before computing the next convergent.
    if (q1 != 0 && a > (max_den - q0) / q1) {
      break;
    }
    const std::int64_t p2 = a * p1 + p0;
    const std::int64_t q2 = a * q1 + q0;
    if (q2 > max_den || q2 <= 0) {
      break;
    }
    p0 = p1;
    q0 = q1;
    p1 = p2;
    q1 = q2;
    const double frac = x - a_floor;
    if (frac < 1e-15 ||
        std::abs(static_cast<double>(p1) / static_cast<double>(q1) - turns) <
            1e-14) {
      break;
    }
    x = 1.0 / frac;
  }
  if (q1 == 0) {
    return Phase{};
  }
  return Phase{p1, q1};
}

double Phase::radians() const {
  return static_cast<double>(num_) / static_cast<double>(den_) *
         std::numbers::pi;
}

Phase Phase::operator+(const Phase& o) const {
  // Reduce over the gcd of denominators to keep intermediates small.
  const std::int64_t g = std::gcd(den_, o.den_);
  return Phase{num_ * (o.den_ / g) + o.num_ * (den_ / g), den_ / g * o.den_};
}

Phase Phase::operator-(const Phase& o) const { return *this + (-o); }

Phase Phase::operator-() const {
  Phase p;
  p.num_ = -num_;
  p.den_ = den_;
  p.normalize();  // maps -pi back to +pi
  return p;
}

std::string Phase::str() const {
  if (num_ == 0) {
    return "0";
  }
  std::string s;
  if (num_ == -1) {
    s = "-pi";
  } else if (num_ == 1) {
    s = "pi";
  } else {
    s = std::to_string(num_) + "pi";
  }
  if (den_ != 1) {
    s += "/" + std::to_string(den_);
  }
  return s;
}

std::ostream& operator<<(std::ostream& os, const Phase& p) {
  return os << p.str();
}

}  // namespace qdt
