// Bit-twiddling helpers shared by the array, DD, and TN backends.
//
// Convention used throughout the library: qubit q corresponds to bit q of a
// basis-state index, so qubit 0 is the *least* significant bit. This matches
// the paper's Section III decomposition where q_{n-1} (the top decision-
// diagram level) is the most significant qubit.
#pragma once

#include <cstddef>
#include <cstdint>

namespace qdt {

/// Value of bit `bit` of `index`.
inline bool get_bit(std::uint64_t index, std::size_t bit) {
  return (index >> bit) & 1ULL;
}

/// `index` with bit `bit` set to `value`.
inline std::uint64_t set_bit(std::uint64_t index, std::size_t bit,
                             bool value) {
  const std::uint64_t mask = 1ULL << bit;
  return value ? (index | mask) : (index & ~mask);
}

/// `index` with bit `bit` flipped.
inline std::uint64_t flip_bit(std::uint64_t index, std::size_t bit) {
  return index ^ (1ULL << bit);
}

/// Insert a zero bit at position `bit`, shifting higher bits up:
/// bits [0, bit) stay, bits [bit, 63) move to [bit+1, 64).
/// Enumerating i in [0, 2^{n-1}) and inserting at `bit` visits exactly the
/// indices whose `bit` is 0 — the standard stride trick for 1-qubit kernels.
inline std::uint64_t insert_zero_bit(std::uint64_t index, std::size_t bit) {
  const std::uint64_t low = index & ((1ULL << bit) - 1);
  const std::uint64_t high = index >> bit;
  return (high << (bit + 1)) | low;
}

/// Insert two zero bits at positions b_low < b_high (positions refer to the
/// *result*). Used by 2-qubit gate kernels.
inline std::uint64_t insert_two_zero_bits(std::uint64_t index,
                                          std::size_t b_low,
                                          std::size_t b_high) {
  return insert_zero_bit(insert_zero_bit(index, b_low), b_high);
}

/// Population count.
inline int popcount64(std::uint64_t v) { return __builtin_popcountll(v); }

}  // namespace qdt
