// Exact rational phases: angles that are rational multiples of pi, kept in
// lowest terms modulo 2*pi.
//
// The ZX-calculus needs *exact* phase arithmetic: whether a spider's phase is
// a multiple of pi/2 (Clifford) or of pi (Pauli) decides which rewrite rules
// fire, and floating-point drift would silently disable them. The circuit IR
// also uses Phase for the discrete gate catalogue (S = pi/2, T = pi/4, ...),
// falling back to a double-valued angle only for truly continuous rotations.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace qdt {

/// An angle `num/den * pi`, normalized so that `den >= 1`,
/// `gcd(|num|, den) == 1`, and `num/den` lies in (-1, 1].
/// The value 0 is represented as 0/1; pi as 1/1.
class Phase {
 public:
  /// Zero phase.
  constexpr Phase() = default;

  /// The phase `num/den * pi`. `den` must be nonzero.
  Phase(std::int64_t num, std::int64_t den);

  /// Named constants for the gate catalogue.
  static Phase zero() { return {}; }
  static Phase pi() { return {1, 1}; }
  static Phase pi_2() { return {1, 2}; }
  static Phase pi_4() { return {1, 4}; }
  static Phase minus_pi_2() { return {-1, 2}; }
  static Phase minus_pi_4() { return {-1, 4}; }

  /// Closest rational-multiple-of-pi approximation of `radians` with
  /// denominator at most `max_den`. Exact for every angle the gate catalogue
  /// produces; for generic angles the worst-case error is ~2^-30 radians.
  /// Used when importing numeric QASM angles and by the Euler-angle passes.
  static Phase from_radians(double radians,
                            std::int64_t max_den = std::int64_t{1} << 30);

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }

  double radians() const;

  bool is_zero() const { return num_ == 0; }
  /// Multiple of pi (0 or pi): the Pauli phases.
  bool is_pauli() const { return den_ == 1; }
  /// Multiple of pi/2: the Clifford phases (includes Pauli).
  bool is_clifford() const { return den_ <= 2; }
  /// Strictly pi/2 or -pi/2 ("proper Clifford", the local-complementation
  /// precondition in graph-like ZX rewriting).
  bool is_proper_clifford() const { return den_ == 2; }

  Phase operator+(const Phase& o) const;
  Phase operator-(const Phase& o) const;
  Phase operator-() const;
  Phase& operator+=(const Phase& o) { return *this = *this + o; }
  Phase& operator-=(const Phase& o) { return *this = *this - o; }

  bool operator==(const Phase& o) const = default;

  /// Human-readable form such as "0", "pi", "-pi/2", "3pi/4".
  std::string str() const;

 private:
  void normalize();

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Phase& p);

}  // namespace qdt
