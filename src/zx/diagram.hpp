// ZX-diagrams (Section V): an undirected open graph of green (Z) and red
// (X) spiders carrying exact rational phases, connected by plain wires or
// Hadamard edges. "Only connectivity matters": the class exposes pure graph
// operations; all quantum semantics live in the rewrite rules
// (zx/simplify.hpp) and the tensor bridge (zx/tensor_bridge.hpp).
//
// Scalars (global factors sqrt(2)^k e^{i phi}) are deliberately not
// tracked: every consumer of this module compares diagrams up to a nonzero
// scalar, which is the physically meaningful notion for states/operators.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/phase.hpp"

namespace qdt::zx {

using V = std::uint32_t;

enum class VertexKind : std::uint8_t { Boundary, Z, X };
enum class EdgeKind : std::uint8_t { Plain, Hadamard };

class ZXDiagram {
 public:
  ZXDiagram() = default;

  // -- Vertices ---------------------------------------------------------
  V add_vertex(VertexKind kind, Phase phase = {});
  /// Remove a vertex and all incident edges. Must not be an input/output.
  void remove_vertex(V v);
  bool alive(V v) const;

  VertexKind kind(V v) const { return data(v).kind; }
  Phase phase(V v) const { return data(v).phase; }
  void set_phase(V v, const Phase& p) { data_mut(v).phase = p; }
  void add_phase(V v, const Phase& p) { data_mut(v).phase += p; }
  void set_kind(V v, VertexKind k) { data_mut(v).kind = k; }

  bool is_boundary(V v) const { return kind(v) == VertexKind::Boundary; }
  bool is_spider(V v) const { return !is_boundary(v); }

  /// All live vertex ids, ascending.
  std::vector<V> vertices() const;
  std::size_t num_vertices() const { return num_live_; }
  std::size_t num_spiders() const;
  std::size_t num_edges() const;
  /// Spiders with a non-Clifford phase (the ZX T-count metric).
  std::size_t t_count() const;

  // -- Edges ------------------------------------------------------------
  bool has_edge(V v, V w) const;
  EdgeKind edge_kind(V v, V w) const;
  /// Raw insertion; throws if the edge exists or v == w.
  void add_edge(V v, V w, EdgeKind kind = EdgeKind::Plain);
  void remove_edge(V v, V w);
  void set_edge_kind(V v, V w, EdgeKind kind);
  /// Hadamard-edge toggling (the local-complementation/pivot primitive):
  /// absent -> add H edge; present H -> remove. Throws on a plain edge.
  void toggle_h_edge(V v, V w);

  /// Edge insertion with the parallel-edge algebra of Z spiders:
  ///  * self-loops: plain vanishes, Hadamard adds pi to the spider,
  ///  * H || H -> both cancel (Hopf),
  ///  * plain || plain -> a single plain edge,
  ///  * plain || H -> the two spiders fuse and gain a pi phase.
  /// May therefore REMOVE vertices (fusion); callers must re-scan.
  /// Both endpoints must be Z spiders unless no edge exists yet.
  void add_edge_smart(V v, V w, EdgeKind kind);

  /// Fuse w into v along an existing plain edge (spider fusion rule):
  /// phases add, w's edges transfer to v via add_edge_smart.
  void fuse(V v, V w);

  /// Neighbor -> edge kind, ascending by neighbor id.
  const std::map<V, EdgeKind>& neighbors(V v) const;
  std::size_t degree(V v) const { return neighbors(v).size(); }

  // -- Boundaries ----------------------------------------------------------
  std::vector<V>& inputs() { return inputs_; }
  std::vector<V>& outputs() { return outputs_; }
  const std::vector<V>& inputs() const { return inputs_; }
  const std::vector<V>& outputs() const { return outputs_; }

  // -- Whole-diagram operations ---------------------------------------------
  /// Diagram of the adjoint map: phases negated, inputs/outputs swapped.
  ZXDiagram adjoint() const;

  /// `first` then `second`: glue first's outputs to second's inputs.
  static ZXDiagram compose(const ZXDiagram& first, const ZXDiagram& second);

  /// True if the diagram is exactly the identity wiring: no spiders, and
  /// input i connected to output i by a plain edge for every i.
  bool is_identity() const;

  /// Graphviz rendering (spiders colored, H edges dashed blue).
  std::string to_dot(const std::string& name = "zx") const;

 private:
  struct VertexData {
    VertexKind kind;
    Phase phase;
  };

  const VertexData& data(V v) const;
  VertexData& data_mut(V v);

  std::vector<std::optional<VertexData>> verts_;
  std::vector<std::map<V, EdgeKind>> adj_;
  std::vector<V> inputs_;
  std::vector<V> outputs_;
  std::size_t num_live_ = 0;
};

}  // namespace qdt::zx
