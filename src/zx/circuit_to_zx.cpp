#include "zx/circuit_to_zx.hpp"

#include <stdexcept>

#include "transpile/decompose.hpp"

namespace qdt::zx {

using ir::GateKind;
using ir::Operation;
using ir::Qubit;

ZXDiagram to_diagram(const ir::Circuit& circuit) {
  // Lower to the ZX alphabet: <=1 control, CX/CZ two-qubit interactions,
  // 1q gates from the H/Z-phase/X-phase families.
  ir::Circuit c = transpile::decompose_multi_controlled(circuit);
  c = transpile::decompose_two_qubit(c, /*keep_cz=*/true);
  c = transpile::rebase_1q_to_hzx(c);

  ZXDiagram d;
  const std::size_t n = c.num_qubits();
  std::vector<V> cur(n);
  std::vector<bool> pending_h(n, false);
  for (std::size_t q = 0; q < n; ++q) {
    cur[q] = d.add_vertex(VertexKind::Boundary);
    d.inputs().push_back(cur[q]);
  }

  const auto add_spider = [&](Qubit q, VertexKind kind,
                              const Phase& phase) -> V {
    const V v = d.add_vertex(kind, phase);
    d.add_edge(cur[q], v,
               pending_h[q] ? EdgeKind::Hadamard : EdgeKind::Plain);
    pending_h[q] = false;
    cur[q] = v;
    return v;
  };

  for (const auto& op : c.ops()) {
    if (op.is_barrier()) {
      continue;
    }
    if (!op.is_unitary()) {
      throw std::invalid_argument(
          "zx::to_diagram: only unitary circuits are supported (found " +
          op.str() + ")");
    }
    if (op.controls().size() == 1) {
      const Qubit ctrl = op.controls()[0];
      const Qubit tgt = op.targets()[0];
      if (op.kind() == GateKind::X) {
        const V vc = add_spider(ctrl, VertexKind::Z, Phase::zero());
        const V vt = add_spider(tgt, VertexKind::X, Phase::zero());
        d.add_edge(vc, vt, EdgeKind::Plain);
        continue;
      }
      if (op.kind() == GateKind::Z) {
        const V vc = add_spider(ctrl, VertexKind::Z, Phase::zero());
        const V vt = add_spider(tgt, VertexKind::Z, Phase::zero());
        d.add_edge(vc, vt, EdgeKind::Hadamard);
        continue;
      }
      throw std::logic_error("zx::to_diagram: unexpected controlled gate " +
                             op.str());
    }
    const Qubit q = op.targets()[0];
    switch (op.kind()) {
      case GateKind::I:
        break;
      case GateKind::H:
        pending_h[q] = !pending_h[q];
        break;
      case GateKind::Z:
        add_spider(q, VertexKind::Z, Phase::pi());
        break;
      case GateKind::S:
        add_spider(q, VertexKind::Z, Phase::pi_2());
        break;
      case GateKind::Sdg:
        add_spider(q, VertexKind::Z, Phase::minus_pi_2());
        break;
      case GateKind::T:
        add_spider(q, VertexKind::Z, Phase::pi_4());
        break;
      case GateKind::Tdg:
        add_spider(q, VertexKind::Z, Phase::minus_pi_4());
        break;
      case GateKind::RZ:
      case GateKind::P:
        add_spider(q, VertexKind::Z, op.params()[0]);
        break;
      case GateKind::X:
        add_spider(q, VertexKind::X, Phase::pi());
        break;
      case GateKind::SX:
        add_spider(q, VertexKind::X, Phase::pi_2());
        break;
      case GateKind::SXdg:
        add_spider(q, VertexKind::X, Phase::minus_pi_2());
        break;
      case GateKind::RX:
        add_spider(q, VertexKind::X, op.params()[0]);
        break;
      default:
        throw std::logic_error("zx::to_diagram: unexpected gate " +
                               op.str());
    }
  }

  for (std::size_t q = 0; q < n; ++q) {
    const V out = d.add_vertex(VertexKind::Boundary);
    d.add_edge(cur[q], out,
               pending_h[q] ? EdgeKind::Hadamard : EdgeKind::Plain);
    d.outputs().push_back(out);
  }
  return d;
}

}  // namespace qdt::zx
