#include "zx/diagram.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace qdt::zx {

const ZXDiagram::VertexData& ZXDiagram::data(V v) const {
  if (v >= verts_.size() || !verts_[v].has_value()) {
    throw std::out_of_range("ZXDiagram: dead vertex " + std::to_string(v));
  }
  return *verts_[v];
}

ZXDiagram::VertexData& ZXDiagram::data_mut(V v) {
  return const_cast<VertexData&>(data(v));
}

V ZXDiagram::add_vertex(VertexKind kind, Phase phase) {
  verts_.push_back(VertexData{kind, phase});
  adj_.emplace_back();
  ++num_live_;
  return static_cast<V>(verts_.size() - 1);
}

void ZXDiagram::remove_vertex(V v) {
  data(v);  // validate
  for (const auto& [w, kind] : adj_[v]) {
    adj_[w].erase(v);
  }
  adj_[v].clear();
  verts_[v].reset();
  --num_live_;
}

bool ZXDiagram::alive(V v) const {
  return v < verts_.size() && verts_[v].has_value();
}

std::vector<V> ZXDiagram::vertices() const {
  std::vector<V> out;
  out.reserve(num_live_);
  for (V v = 0; v < verts_.size(); ++v) {
    if (verts_[v].has_value()) {
      out.push_back(v);
    }
  }
  return out;
}

std::size_t ZXDiagram::num_spiders() const {
  std::size_t n = 0;
  for (V v = 0; v < verts_.size(); ++v) {
    if (verts_[v].has_value() && verts_[v]->kind != VertexKind::Boundary) {
      ++n;
    }
  }
  return n;
}

std::size_t ZXDiagram::num_edges() const {
  std::size_t n = 0;
  for (const auto& nbrs : adj_) {
    n += nbrs.size();
  }
  return n / 2;
}

std::size_t ZXDiagram::t_count() const {
  std::size_t n = 0;
  for (V v = 0; v < verts_.size(); ++v) {
    if (verts_[v].has_value() && verts_[v]->kind != VertexKind::Boundary &&
        !verts_[v]->phase.is_clifford()) {
      ++n;
    }
  }
  return n;
}

bool ZXDiagram::has_edge(V v, V w) const {
  data(v);
  data(w);
  return adj_[v].contains(w);
}

EdgeKind ZXDiagram::edge_kind(V v, V w) const {
  const auto it = adj_[v].find(w);
  if (it == adj_[v].end()) {
    throw std::out_of_range("ZXDiagram: no such edge");
  }
  return it->second;
}

void ZXDiagram::add_edge(V v, V w, EdgeKind kind) {
  data(v);
  data(w);
  if (v == w) {
    throw std::invalid_argument("ZXDiagram::add_edge: self loop");
  }
  if (adj_[v].contains(w)) {
    throw std::invalid_argument("ZXDiagram::add_edge: edge exists");
  }
  adj_[v].emplace(w, kind);
  adj_[w].emplace(v, kind);
}

void ZXDiagram::remove_edge(V v, V w) {
  if (adj_[v].erase(w) == 0) {
    throw std::out_of_range("ZXDiagram::remove_edge: no such edge");
  }
  adj_[w].erase(v);
}

void ZXDiagram::set_edge_kind(V v, V w, EdgeKind kind) {
  adj_[v].at(w) = kind;
  adj_[w].at(v) = kind;
}

void ZXDiagram::toggle_h_edge(V v, V w) {
  const auto it = adj_[v].find(w);
  if (it == adj_[v].end()) {
    add_edge(v, w, EdgeKind::Hadamard);
    return;
  }
  if (it->second != EdgeKind::Hadamard) {
    throw std::logic_error("toggle_h_edge: plain edge present");
  }
  remove_edge(v, w);
}

void ZXDiagram::add_edge_smart(V v, V w, EdgeKind ekind) {
  if (v == w) {
    // Self loop on a Z spider: plain loops vanish; a Hadamard loop adds pi.
    if (ekind == EdgeKind::Hadamard) {
      add_phase(v, Phase::pi());
    }
    return;
  }
  const auto it = adj_[v].find(w);
  if (it == adj_[v].end()) {
    add_edge(v, w, ekind);
    return;
  }
  if (kind(v) != VertexKind::Z || kind(w) != VertexKind::Z) {
    throw std::logic_error(
        "add_edge_smart: parallel edge on non-Z-spider endpoints");
  }
  const EdgeKind existing = it->second;
  if (existing == EdgeKind::Hadamard && ekind == EdgeKind::Hadamard) {
    remove_edge(v, w);  // Hopf: H || H cancels (scalar dropped)
    return;
  }
  if (existing == EdgeKind::Plain && ekind == EdgeKind::Plain) {
    return;  // plain || plain == single plain between equal-color spiders
  }
  // Mixed plain || Hadamard: fusing along the plain wire turns the H edge
  // into an H self-loop, which contributes a pi phase.
  set_edge_kind(v, w, EdgeKind::Plain);
  fuse(v, w);
  add_phase(v, Phase::pi());
}

void ZXDiagram::fuse(V v, V w) {
  if (edge_kind(v, w) != EdgeKind::Plain) {
    throw std::logic_error("fuse: edge is not plain");
  }
  if (is_boundary(v) || is_boundary(w)) {
    throw std::logic_error("fuse: boundary vertex");
  }
  add_phase(v, phase(w));
  remove_edge(v, w);
  // Transfer the remaining edges of w.
  const auto nbrs = adj_[w];  // copy: add_edge_smart may mutate
  for (const auto& [u, k] : nbrs) {
    remove_edge(w, u);
    add_edge_smart(v, u, k);
    if (!alive(w)) {
      break;  // a cascaded fusion consumed w already
    }
  }
  if (alive(w)) {
    remove_vertex(w);
  }
}

const std::map<V, EdgeKind>& ZXDiagram::neighbors(V v) const {
  data(v);
  return adj_[v];
}

ZXDiagram ZXDiagram::adjoint() const {
  ZXDiagram d = *this;
  for (V v = 0; v < d.verts_.size(); ++v) {
    if (d.verts_[v].has_value()) {
      d.verts_[v]->phase = -d.verts_[v]->phase;
    }
  }
  std::swap(d.inputs_, d.outputs_);
  return d;
}

ZXDiagram ZXDiagram::compose(const ZXDiagram& first,
                             const ZXDiagram& second) {
  if (first.outputs_.size() != second.inputs_.size()) {
    throw std::invalid_argument("ZXDiagram::compose: arity mismatch");
  }
  ZXDiagram d = first;
  // Import `second` with shifted ids.
  const V offset = static_cast<V>(d.verts_.size());
  for (V v = 0; v < second.verts_.size(); ++v) {
    d.verts_.push_back(second.verts_[v]);
    d.adj_.emplace_back();
    if (second.verts_[v].has_value()) {
      ++d.num_live_;
    }
  }
  for (V v = 0; v < second.verts_.size(); ++v) {
    if (!second.verts_[v].has_value()) {
      continue;
    }
    for (const auto& [w, k] : second.adj_[v]) {
      if (v < w) {
        d.add_edge(v + offset, w + offset, k);
      }
    }
  }
  // Glue: first.outputs[i] -- second.inputs[i].
  for (std::size_t i = 0; i < first.outputs_.size(); ++i) {
    const V oa = first.outputs_[i];
    const V ib = second.inputs_[i] + offset;
    if (d.degree(oa) != 1 || d.degree(ib) != 1) {
      throw std::logic_error("compose: boundary vertex degree != 1");
    }
    const auto [na, ka] = *d.adj_[oa].begin();
    const auto [nb, kb] = *d.adj_[ib].begin();
    const EdgeKind combined = (ka == EdgeKind::Hadamard) !=
                                      (kb == EdgeKind::Hadamard)
                                  ? EdgeKind::Hadamard
                                  : EdgeKind::Plain;
    d.remove_vertex(oa);
    d.remove_vertex(ib);
    // na lives in `first`, nb in `second`, so na != nb unless both halves
    // had a bare boundary wire — which circuit-derived diagrams never have
    // (circuit_to_zx puts at least the wire spiders in). Self-gluing a
    // single spider is still handled for generality.
    if (na == nb) {
      d.add_edge_smart(na, na, combined);
    } else if (!d.has_edge(na, nb)) {
      d.add_edge(na, nb, combined);
    } else {
      d.add_edge_smart(na, nb, combined);
    }
  }
  d.outputs_.clear();
  for (const V o : second.outputs_) {
    d.outputs_.push_back(o + offset);
  }
  return d;
}

bool ZXDiagram::is_identity() const {
  if (inputs_.size() != outputs_.size()) {
    return false;
  }
  if (num_live_ != inputs_.size() + outputs_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    const V in = inputs_[i];
    const V out = outputs_[i];
    if (!alive(in) || !alive(out) || !adj_[in].contains(out)) {
      return false;
    }
    if (adj_[in].at(out) != EdgeKind::Plain) {
      return false;
    }
  }
  return true;
}

std::string ZXDiagram::to_dot(const std::string& name) const {
  std::ostringstream os;
  os << "graph \"" << name << "\" {\n";
  for (const V v : vertices()) {
    os << "  v" << v << " [";
    switch (kind(v)) {
      case VertexKind::Boundary:
        os << "shape=none, label=\"" << v << "\"";
        break;
      case VertexKind::Z:
        os << "shape=circle, style=filled, fillcolor=palegreen, label=\""
           << phase(v).str() << "\"";
        break;
      case VertexKind::X:
        os << "shape=circle, style=filled, fillcolor=lightcoral, label=\""
           << phase(v).str() << "\"";
        break;
    }
    os << "];\n";
  }
  for (const V v : vertices()) {
    for (const auto& [w, k] : adj_[v]) {
      if (v < w) {
        os << "  v" << v << " -- v" << w;
        if (k == EdgeKind::Hadamard) {
          os << " [style=dashed, color=blue]";
        }
        os << ";\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace qdt::zx
