#include "zx/equivalence.hpp"

#include "guard/error.hpp"
#include "zx/circuit_to_zx.hpp"
#include "zx/simplify.hpp"
#include "zx/tensor_bridge.hpp"

namespace qdt::zx {

ZxEcResult check_equivalence_zx(const ir::Circuit& c1, const ir::Circuit& c2,
                                std::size_t max_fallback_qubits) {
  ZxEcResult res;
  if (c1.num_qubits() != c2.num_qubits()) {
    res.verdict = ZxVerdict::NotEquivalent;
    res.note = "width mismatch";
    return res;
  }
  ZXDiagram miter =
      ZXDiagram::compose(to_diagram(c1), to_diagram(c2).adjoint());
  res.initial_spiders = miter.num_spiders();
  clifford_simp(miter);
  res.reduced_spiders = miter.num_spiders();
  if (miter.is_identity()) {
    res.verdict = ZxVerdict::Equivalent;
    res.decided_by_rewriting = true;
    res.note = "reduced to the identity diagram";
    return res;
  }
  if (c1.num_qubits() <= max_fallback_qubits) {
    try {
      // Budget: never let the fallback materialize more than ~2^26
      // complex numbers in one intermediate tensor (1 GiB).
      const ZXMatrix m =
          to_matrix(miter, /*max_intermediate=*/std::size_t{1} << 26);
      res.verdict = is_identity_up_to_scalar(m)
                        ? ZxVerdict::Equivalent
                        : ZxVerdict::NotEquivalent;
      res.note = "decided by tensor evaluation of the reduced diagram";
      return res;
    } catch (const Error& e) {
      if (e.code() != ErrorCode::ResourceExhausted) {
        throw;
      }
      res.verdict = ZxVerdict::Inconclusive;
      res.note = "rewriting stalled; tensor fallback exceeded its budget";
      return res;
    }
  }
  res.verdict = ZxVerdict::Inconclusive;
  res.note = "rewriting stalled; diagram too wide for tensor fallback";
  return res;
}

}  // namespace qdt::zx
