// Graph-theoretic simplification of ZX-diagrams (Duncan, Kissinger,
// Perdrix, van de Wetering [38]): bring the diagram into graph-like form
// (only Z spiders, only Hadamard edges between spiders), then repeatedly
// remove spiders via identity elimination, local complementation (proper
// Clifford phases) and pivoting (interior Pauli pairs) until no rule fires.
// The procedure terminates because every rewrite strictly removes spiders.
#pragma once

#include <cstddef>

#include "ir/circuit.hpp"
#include "zx/diagram.hpp"

namespace qdt::zx {

struct SimplifyStats {
  std::size_t fusions = 0;
  std::size_t color_changes = 0;
  std::size_t id_removals = 0;
  std::size_t local_complementations = 0;
  std::size_t pivots = 0;
  std::size_t boundary_pivots = 0;
  std::size_t rounds = 0;

  std::size_t total() const {
    return fusions + id_removals + local_complementations + pivots +
           boundary_pivots;
  }
};

/// Turn every X spider into a Z spider (color change: toggles the kind of
/// every incident edge). Returns the number of spiders recolored.
std::size_t color_change_to_z(ZXDiagram& d);

/// Fuse plain-connected Z spider pairs until none remain.
std::size_t spider_fusion(ZXDiagram& d);

/// Remove phase-0 degree-2 Z spiders (identity wires).
std::size_t remove_identities(ZXDiagram& d);

/// Local complementation: remove interior +-pi/2 spiders, complementing the
/// edges among their neighborhoods.
std::size_t local_complementation(ZXDiagram& d);

/// Pivot: remove interior Hadamard-connected Pauli-phase spider pairs.
std::size_t pivoting(ZXDiagram& d);

/// Boundary pivot: eliminate an interior Pauli spider whose Pauli partner
/// touches the boundary, by splicing identity spiders onto the boundary
/// wires until the partner is interior and then pivoting. Call only when
/// the interior rules have reached a fixpoint; one invocation performs at
/// most one pivot (clifford_simp caps the total number of applications to
/// guarantee termination).
std::size_t boundary_pivoting(ZXDiagram& d);

/// Convert to graph-like form: color change + fusion + plain boundary
/// wires (inserting identity spiders where a boundary meets an H edge).
SimplifyStats to_graph_like(ZXDiagram& d);

/// The terminating interior-Clifford simplification loop of [38].
SimplifyStats clifford_simp(ZXDiagram& d);

/// T-count of `circuit` after ZX simplification — the [39] metric. The
/// reduced diagram represents the same unitary with (usually) fewer
/// non-Clifford phases than the circuit's own T-count.
std::size_t reduced_t_count(const ir::Circuit& circuit);

}  // namespace qdt::zx
