// Circuit -> ZX-diagram translation (Section V, Example 5).
//
// The translation consumes the alphabet {H, Z-phase family, X-phase family,
// CX, CZ}; everything else is first lowered with the transpiler's exact
// decomposition passes. Hadamards become Hadamard *edges* on the wire, CX
// becomes a plain Z-X spider pair, CZ a Hadamard-connected Z-Z pair.
#pragma once

#include "ir/circuit.hpp"
#include "zx/diagram.hpp"

namespace qdt::zx {

/// Translate a unitary circuit (any catalogue gates; multi-controls are
/// decomposed on the way) into a ZX-diagram with one input and one output
/// boundary per qubit. Equals the circuit's unitary up to a global scalar.
ZXDiagram to_diagram(const ir::Circuit& circuit);

}  // namespace qdt::zx
