// ZX-calculus based equivalence checking ([24], [38]): build the miter
// diagram D(c1) ; D(c2)^dagger, reduce it with the graph-like rewrite
// system, and test for the identity diagram. Rewriting alone is complete
// for Clifford circuits; when the reduced diagram is not syntactically the
// identity, the checker optionally falls back to evaluating the (already
// shrunken) diagram through the tensor-network bridge, which decides
// exactly for small widths.
#pragma once

#include <cstddef>
#include <string>

#include "ir/circuit.hpp"

namespace qdt::zx {

enum class ZxVerdict {
  Equivalent,
  NotEquivalent,
  /// Rewriting did not reach the identity and the diagram is too wide for
  /// the tensor fallback.
  Inconclusive,
};

struct ZxEcResult {
  ZxVerdict verdict = ZxVerdict::Inconclusive;
  /// Spiders in the miter before/after reduction (the ZX cost metric).
  std::size_t initial_spiders = 0;
  std::size_t reduced_spiders = 0;
  /// True if the verdict came from rewriting alone.
  bool decided_by_rewriting = false;
  std::string note;
};

/// Check c1 ~ c2 (up to global scalar). `max_fallback_qubits` bounds the
/// width for which the tensor-network fallback is attempted (0 disables
/// it).
ZxEcResult check_equivalence_zx(const ir::Circuit& c1, const ir::Circuit& c2,
                                std::size_t max_fallback_qubits = 10);

}  // namespace qdt::zx
