#include "zx/tensor_bridge.hpp"

#include <cmath>
#include <map>

#include "common/bitops.hpp"
#include "guard/budget.hpp"
#include "tn/network.hpp"

namespace qdt::zx {

namespace {

/// Spider tensor of rank `deg` (scalars dropped):
///   Z(phase): 1 on all-zeros, e^{i phase} on all-ones, 0 elsewhere;
///   X(phase): H-conjugated Z = 1 + e^{i phase} (-1)^{popcount}.
tn::Tensor spider_tensor(VertexKind kind, const Phase& phase,
                         const std::vector<tn::Label>& labels) {
  const std::size_t deg = labels.size();
  tn::Tensor t(labels, std::vector<std::size_t>(deg, 2));
  const Complex eip{std::cos(phase.radians()), std::sin(phase.radians())};
  const std::size_t total = std::size_t{1} << deg;
  std::vector<std::size_t> idx(deg);
  if (kind == VertexKind::Z) {
    // Only the all-zeros and all-ones entries are nonzero — fill them
    // directly instead of scanning all 2^deg words (a stalled ZX diagram
    // can leave spiders of degree 20+, where the scan dominates).
    if (deg == 0) {
      t.at(idx) = Complex{1.0} + eip;  // isolated spider: scalar 1+e^{ip}
    } else {
      t.at(idx) = 1.0;
      idx.assign(deg, 1);
      t.at(idx) = eip;
    }
    return t;
  }
  for (std::size_t word = 0; word < total; ++word) {
    if ((word & 0xFFFF) == 0) {
      guard::check_deadline();
    }
    for (std::size_t i = 0; i < deg; ++i) {
      idx[i] = (word >> i) & 1;
    }
    const int pc = popcount64(word);
    t.at(idx) = Complex{1.0} +
                eip * ((pc % 2 == 0) ? Complex{1.0} : Complex{-1.0});
  }
  return t;
}

tn::Tensor connector_tensor(EdgeKind kind, tn::Label a, tn::Label b) {
  tn::Tensor t({a, b}, {2, 2});
  if (kind == EdgeKind::Plain) {
    t.at({0, 0}) = 1.0;
    t.at({1, 1}) = 1.0;
  } else {
    t.at({0, 0}) = 1.0;
    t.at({0, 1}) = 1.0;
    t.at({1, 0}) = 1.0;
    t.at({1, 1}) = -1.0;  // Hadamard up to 1/sqrt(2)
  }
  return t;
}

}  // namespace

ZXMatrix to_matrix(const ZXDiagram& d, std::size_t max_intermediate) {
  const std::size_t n_in = d.inputs().size();
  const std::size_t n_out = d.outputs().size();
  if (n_in + n_out > 24) {
    throw Error::unsupported("zx::to_matrix: too many open wires");
  }
  tn::TensorNetwork net;
  // Two labels per edge plus a connector tensor; per-vertex label lists.
  std::map<V, std::vector<tn::Label>> legs;
  for (const V v : d.vertices()) {
    for (const auto& [w, kind] : d.neighbors(v)) {
      if (v < w) {
        const tn::Label lv = net.fresh_label();
        const tn::Label lw = net.fresh_label();
        net.add(connector_tensor(kind, lv, lw));
        legs[v].push_back(lv);
        legs[w].push_back(lw);
      }
    }
  }
  std::vector<tn::Label> in_labels;
  std::vector<tn::Label> out_labels;
  for (const V v : d.vertices()) {
    if (d.is_boundary(v)) {
      if (d.degree(v) != 1) {
        throw Error::internal("zx::to_matrix: boundary degree != 1");
      }
      continue;  // boundary legs stay open
    }
    // A rank-k spider materializes 2^k elements. A stalled simplification
    // can leave spiders of huge degree; refuse before allocating.
    guard::check_deadline();
    const std::size_t deg = legs[v].size();
    if (deg >= 63 ||
        (max_intermediate != 0 && (std::size_t{1} << deg) > max_intermediate)) {
      throw Error::exhausted(
          Resource::TnElements,
          "zx::to_matrix: spider of degree " + std::to_string(deg) +
              " exceeds the intermediate budget");
    }
    guard::check_tn_elements(std::size_t{1} << deg);
    guard::check_memory((std::size_t{1} << deg) * sizeof(Complex),
                        "zx spider tensor");
    net.add(spider_tensor(d.kind(v), d.phase(v), legs[v]));
  }
  for (const V b : d.inputs()) {
    in_labels.push_back(legs.at(b).at(0));
  }
  for (const V b : d.outputs()) {
    out_labels.push_back(legs.at(b).at(0));
  }

  tn::Tensor result =
      net.contract_all(net.greedy_plan(), nullptr, max_intermediate);
  // Order: out_{n-1} .. out_0, in_{m-1} .. in_0 (row-major => row index is
  // the output word, column the input word).
  std::vector<tn::Label> order(out_labels.rbegin(), out_labels.rend());
  order.insert(order.end(), in_labels.rbegin(), in_labels.rend());
  result = result.permuted(order);

  ZXMatrix m;
  m.rows = std::size_t{1} << n_out;
  m.cols = std::size_t{1} << n_in;
  m.data = result.data();
  return m;
}

bool equal_up_to_scalar(const ZXMatrix& a, const ZXMatrix& b, double eps) {
  if (a.rows != b.rows || a.cols != b.cols ||
      a.data.size() != b.data.size()) {
    return false;
  }
  // Scale both to their largest entry.
  const auto max_entry = [](const ZXMatrix& m) {
    std::size_t k = 0;
    double best = 0.0;
    for (std::size_t i = 0; i < m.data.size(); ++i) {
      if (std::abs(m.data[i]) > best) {
        best = std::abs(m.data[i]);
        k = i;
      }
    }
    return std::make_pair(k, best);
  };
  const auto [ka, na] = max_entry(a);
  const auto [kb, nb] = max_entry(b);
  if (na <= eps || nb <= eps) {
    return na <= eps && nb <= eps;  // both (numerically) zero maps
  }
  // Align on a's largest entry.
  if (std::abs(b.data[ka]) <= eps * nb) {
    return false;
  }
  const Complex ratio = a.data[ka] / b.data[ka];
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    if (std::abs(a.data[i] - ratio * b.data[i]) > eps * na) {
      return false;
    }
  }
  return true;
}

bool is_identity_up_to_scalar(const ZXMatrix& m, double eps) {
  if (m.rows != m.cols) {
    return false;
  }
  ZXMatrix id;
  id.rows = m.rows;
  id.cols = m.cols;
  id.data.assign(m.rows * m.cols, Complex{});
  for (std::size_t i = 0; i < m.rows; ++i) {
    id.data[i * m.cols + i] = 1.0;
  }
  return equal_up_to_scalar(m, id, eps);
}

}  // namespace qdt::zx
