// ZX -> tensor-network bridge: evaluate a ZX-diagram to its matrix by
// contracting one tensor per spider (Section IV machinery applied to
// Section V diagrams). Used to verify that every rewrite preserves
// semantics, and as the completeness fallback of the ZX equivalence
// checker.
//
// Scalars: the per-spider normalization factors are dropped, so the result
// equals the diagram's true matrix up to a nonzero global scalar.
#pragma once

#include <vector>

#include "common/eps.hpp"
#include "zx/diagram.hpp"

namespace qdt::zx {

/// Dense matrix of a ZX-diagram, up to a scalar. Row index bits are the
/// output qubits (bit q = output q), column bits the inputs.
struct ZXMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<Complex> data;  // row-major

  Complex at(std::size_t r, std::size_t c) const {
    return data[r * cols + c];
  }
};

/// Contract the diagram (greedy plan). Feasible for small open widths
/// (result alone is 2^(m+n) entries). Throws std::length_error when an
/// intermediate tensor would exceed `max_intermediate` elements (0 = no
/// budget).
ZXMatrix to_matrix(const ZXDiagram& d, std::size_t max_intermediate = 0);

/// True if a == scalar * b for some nonzero scalar.
bool equal_up_to_scalar(const ZXMatrix& a, const ZXMatrix& b,
                        double eps = 1e-8);

/// True if m is a nonzero scalar multiple of the identity.
bool is_identity_up_to_scalar(const ZXMatrix& m, double eps = 1e-8);

}  // namespace qdt::zx
