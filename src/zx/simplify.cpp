#include "zx/simplify.hpp"

#include <vector>

#include "guard/budget.hpp"
#include "obs/obs.hpp"
#include "trace/trace.hpp"
#include "zx/circuit_to_zx.hpp"

namespace qdt::zx {

namespace {

// Fire count per rewrite rule — the operative quantity when judging which
// rules carry a given reduction (SimplifyStats is the per-call view).
obs::Counter& g_color_changes = obs::counter("qdt.zx.rule.color_change");
obs::Counter& g_fusions = obs::counter("qdt.zx.rule.fusion");
obs::Counter& g_id_removals = obs::counter("qdt.zx.rule.id_removal");
obs::Counter& g_local_comps =
    obs::counter("qdt.zx.rule.local_complementation");
obs::Counter& g_pivots = obs::counter("qdt.zx.rule.pivot");
obs::Counter& g_boundary_pivots = obs::counter("qdt.zx.rule.boundary_pivot");
obs::Counter& g_rounds = obs::counter("qdt.zx.simplify.rounds");

}  // namespace

std::size_t color_change_to_z(ZXDiagram& d) {
  std::size_t count = 0;
  for (const V v : d.vertices()) {
    if (!d.alive(v) || d.kind(v) != VertexKind::X) {
      continue;
    }
    d.set_kind(v, VertexKind::Z);
    // Toggle the kind of every incident edge.
    const auto nbrs = d.neighbors(v);  // copy
    for (const auto& [w, k] : nbrs) {
      d.set_edge_kind(v, w,
                      k == EdgeKind::Plain ? EdgeKind::Hadamard
                                           : EdgeKind::Plain);
    }
    ++count;
  }
  g_color_changes.add(count);
  return count;
}

std::size_t spider_fusion(ZXDiagram& d) {
  std::size_t count = 0;
  bool changed = true;
  while (changed) {
    guard::check_deadline();
    changed = false;
    for (const V v : d.vertices()) {
      if (!d.alive(v) || d.kind(v) != VertexKind::Z) {
        continue;
      }
      for (const auto& [w, k] : d.neighbors(v)) {
        if (k == EdgeKind::Plain && d.alive(w) &&
            d.kind(w) == VertexKind::Z) {
          d.fuse(v, w);
          ++count;
          changed = true;
          break;  // neighbor map invalidated
        }
      }
    }
  }
  g_fusions.add(count);
  return count;
}

std::size_t remove_identities(ZXDiagram& d) {
  std::size_t count = 0;
  bool changed = true;
  while (changed) {
    guard::check_deadline();
    changed = false;
    for (const V v : d.vertices()) {
      if (!d.alive(v) || d.kind(v) != VertexKind::Z ||
          !d.phase(v).is_zero() || d.degree(v) != 2) {
        continue;
      }
      const auto& nbrs = d.neighbors(v);
      const auto it = nbrs.begin();
      const V n1 = it->first;
      const EdgeKind k1 = it->second;
      const V n2 = std::next(it)->first;
      const EdgeKind k2 = std::next(it)->second;
      const EdgeKind combined =
          (k1 == EdgeKind::Hadamard) != (k2 == EdgeKind::Hadamard)
              ? EdgeKind::Hadamard
              : EdgeKind::Plain;
      // Keep boundary wires plain (graph-like invariant): removing this
      // spider would put an H edge on a boundary — skip those.
      if (combined == EdgeKind::Hadamard &&
          (d.is_boundary(n1) || d.is_boundary(n2))) {
        continue;
      }
      d.remove_vertex(v);
      if (d.is_boundary(n1) || d.is_boundary(n2)) {
        d.add_edge(n1, n2, combined);  // boundary degree was 1: no parallel
      } else {
        d.add_edge_smart(n1, n2, combined);
      }
      ++count;
      changed = true;
      break;  // vertex list invalidated (add_edge_smart may fuse)
    }
  }
  g_id_removals.add(count);
  return count;
}

namespace {

/// True if v is an interior graph-like spider: a Z spider all of whose
/// neighbors are Z spiders reached via Hadamard edges.
bool interior_h_spider(const ZXDiagram& d, V v) {
  if (d.kind(v) != VertexKind::Z) {
    return false;
  }
  for (const auto& [w, k] : d.neighbors(v)) {
    if (k != EdgeKind::Hadamard || d.kind(w) != VertexKind::Z) {
      return false;
    }
  }
  return true;
}

/// The pivot transformation on an interior Pauli pair (v, w): complement
/// the tri-partitioned neighborhood edges, push phases, remove both.
void apply_pivot(ZXDiagram& d, V v, V w) {
  const Phase pv = d.phase(v);
  const Phase pw = d.phase(w);
  std::vector<V> only_v;
  std::vector<V> only_w;
  std::vector<V> common;
  for (const auto& [u, k] : d.neighbors(v)) {
    if (u == w) {
      continue;
    }
    if (d.has_edge(w, u)) {
      common.push_back(u);
    } else {
      only_v.push_back(u);
    }
  }
  for (const auto& [u, k] : d.neighbors(w)) {
    if (u == v) {
      continue;
    }
    if (!d.has_edge(v, u)) {
      only_w.push_back(u);
    }
  }
  d.remove_vertex(v);
  d.remove_vertex(w);
  for (const V a : only_v) {
    for (const V b : only_w) {
      d.toggle_h_edge(a, b);
    }
  }
  for (const V a : only_v) {
    for (const V c : common) {
      d.toggle_h_edge(a, c);
    }
  }
  for (const V b : only_w) {
    for (const V c : common) {
      d.toggle_h_edge(b, c);
    }
  }
  for (const V a : only_v) {
    d.add_phase(a, pw);
  }
  for (const V b : only_w) {
    d.add_phase(b, pv);
  }
  for (const V c : common) {
    d.add_phase(c, pv + pw + Phase::pi());
  }
}

}  // namespace

std::size_t local_complementation(ZXDiagram& d) {
  std::size_t count = 0;
  bool changed = true;
  while (changed) {
    guard::check_deadline();
    changed = false;
    for (const V v : d.vertices()) {
      if (!d.alive(v) || !interior_h_spider(d, v) ||
          !d.phase(v).is_proper_clifford()) {
        continue;
      }
      const Phase alpha = d.phase(v);
      std::vector<V> nbrs;
      for (const auto& [w, k] : d.neighbors(v)) {
        nbrs.push_back(w);
      }
      d.remove_vertex(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
          d.toggle_h_edge(nbrs[i], nbrs[j]);
        }
      }
      for (const V w : nbrs) {
        d.add_phase(w, -alpha);
      }
      ++count;
      changed = true;
      break;
    }
  }
  g_local_comps.add(count);
  return count;
}

std::size_t pivoting(ZXDiagram& d) {
  std::size_t count = 0;
  bool changed = true;
  while (changed) {
    guard::check_deadline();
    changed = false;
    for (const V v : d.vertices()) {
      if (!d.alive(v) || !interior_h_spider(d, v) ||
          !d.phase(v).is_pauli()) {
        continue;
      }
      V w_found = v;
      for (const auto& [w, k] : d.neighbors(v)) {
        if (interior_h_spider(d, w) && d.phase(w).is_pauli()) {
          w_found = w;
          break;
        }
      }
      if (w_found == v) {
        continue;
      }
      apply_pivot(d, v, w_found);
      ++count;
      changed = true;
      break;
    }
  }
  g_pivots.add(count);
  return count;
}

std::size_t boundary_pivoting(ZXDiagram& d) {
  for (const V v : d.vertices()) {
    if (!d.alive(v) || !interior_h_spider(d, v) || !d.phase(v).is_pauli()) {
      continue;
    }
    // Partner w: Pauli spider adjacent via H whose only non-H edges are
    // plain boundary wires.
    for (const auto& [w, kvw] : d.neighbors(v)) {
      if (kvw != EdgeKind::Hadamard || d.kind(w) != VertexKind::Z ||
          !d.phase(w).is_pauli()) {
        continue;
      }
      std::vector<V> boundary_nbrs;
      bool ok = true;
      for (const auto& [u, k] : d.neighbors(w)) {
        if (d.is_boundary(u)) {
          if (k != EdgeKind::Plain) {
            ok = false;
            break;
          }
          boundary_nbrs.push_back(u);
        } else if (k != EdgeKind::Hadamard || d.kind(u) != VertexKind::Z) {
          ok = false;
          break;
        }
      }
      if (!ok || boundary_nbrs.empty()) {
        continue;
      }
      // Splice b --plain-- z1 --H-- z2 --H-- w on every boundary wire so
      // that w becomes interior; the z1/z2 pair is semantically a plain
      // wire (H . H = I through phase-0 spiders).
      for (const V b : boundary_nbrs) {
        d.remove_edge(b, w);
        const V z1 = d.add_vertex(VertexKind::Z);
        const V z2 = d.add_vertex(VertexKind::Z);
        d.add_edge(b, z1, EdgeKind::Plain);
        d.add_edge(z1, z2, EdgeKind::Hadamard);
        d.add_edge(z2, w, EdgeKind::Hadamard);
      }
      apply_pivot(d, v, w);
      g_boundary_pivots.add();
      return 1;
    }
  }
  // Second chance: a proper-Clifford (+-pi/2) spider stuck at the boundary
  // gets its boundary wires spliced so that ordinary local complementation
  // applies.
  for (const V v : d.vertices()) {
    if (!d.alive(v) || d.kind(v) != VertexKind::Z ||
        !d.phase(v).is_proper_clifford()) {
      continue;
    }
    std::vector<V> boundary_nbrs;
    bool ok = true;
    for (const auto& [u, k] : d.neighbors(v)) {
      if (d.is_boundary(u)) {
        if (k != EdgeKind::Plain) {
          ok = false;
          break;
        }
        boundary_nbrs.push_back(u);
      } else if (k != EdgeKind::Hadamard || d.kind(u) != VertexKind::Z) {
        ok = false;
        break;
      }
    }
    if (!ok || boundary_nbrs.empty()) {
      continue;
    }
    for (const V b : boundary_nbrs) {
      d.remove_edge(b, v);
      const V z1 = d.add_vertex(VertexKind::Z);
      const V z2 = d.add_vertex(VertexKind::Z);
      d.add_edge(b, z1, EdgeKind::Plain);
      d.add_edge(z1, z2, EdgeKind::Hadamard);
      d.add_edge(z2, v, EdgeKind::Hadamard);
    }
    // v is now interior: run one local complementation on it.
    const Phase alpha = d.phase(v);
    std::vector<V> nbrs;
    for (const auto& [w, k] : d.neighbors(v)) {
      nbrs.push_back(w);
    }
    d.remove_vertex(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        d.toggle_h_edge(nbrs[i], nbrs[j]);
      }
    }
    for (const V w : nbrs) {
      d.add_phase(w, -alpha);
    }
    g_boundary_pivots.add();
    return 1;
  }
  return 0;
}

namespace {

/// Restore plain boundary wires: a boundary reached through an H edge gets
/// an identity Z spider spliced in.
std::size_t fix_boundaries(ZXDiagram& d) {
  std::size_t count = 0;
  auto fix = [&](V b) {
    if (d.degree(b) != 1) {
      return;
    }
    const auto [n, k] = *d.neighbors(b).begin();
    if (k != EdgeKind::Hadamard) {
      return;
    }
    d.remove_edge(b, n);
    const V m = d.add_vertex(VertexKind::Z);
    d.add_edge(b, m, EdgeKind::Plain);
    // n might be another boundary (bare Hadamard wire) — a raw edge is
    // fine, m is fresh.
    d.add_edge(m, n, EdgeKind::Hadamard);
    ++count;
  };
  for (const V b : d.inputs()) {
    fix(b);
  }
  for (const V b : d.outputs()) {
    fix(b);
  }
  return count;
}

}  // namespace

SimplifyStats to_graph_like(ZXDiagram& d) {
  SimplifyStats s;
  s.color_changes = color_change_to_z(d);
  s.fusions = spider_fusion(d);
  fix_boundaries(d);
  return s;
}

SimplifyStats clifford_simp(ZXDiagram& d) {
  trace::Span span("qdt.zx.simplify.run");
  span.attr("backend", "zx")
      .attr("spiders", static_cast<std::uint64_t>(d.num_spiders()));
  SimplifyStats s = to_graph_like(d);
  // Boundary rules are not strictly decreasing (splices add spiders), so
  // termination is enforced by a hard cap plus a stall detector: stop once
  // eight consecutive boundary applications fail to shrink the diagram.
  std::size_t boundary_budget = 2 * d.num_spiders() + 64;
  std::size_t best_spiders = d.num_spiders();
  std::size_t stalled = 0;
  bool changed = true;
  while (changed) {
    guard::check_deadline();
    ++s.rounds;
    g_rounds.add();
    std::size_t n = 0;
    // Fusion + identity removal to a fixpoint first: local complementation
    // and pivoting assume no plain spider-spider edges remain.
    while (true) {
      const std::size_t f = spider_fusion(d);
      const std::size_t ids = remove_identities(d);
      s.fusions += f;
      s.id_removals += ids;
      n += f + ids;
      if (f + ids == 0) {
        break;
      }
    }
    const std::size_t lc = local_complementation(d);
    s.local_complementations += lc;
    n += lc;
    const std::size_t pv = pivoting(d);
    s.pivots += pv;
    n += pv;
    if (n == 0 && boundary_budget > 0) {
      const std::size_t bp = boundary_pivoting(d);
      s.boundary_pivots += bp;
      n += bp;
      boundary_budget -= bp > boundary_budget ? boundary_budget : bp;
      if (bp > 0) {
        if (d.num_spiders() < best_spiders) {
          best_spiders = d.num_spiders();
          stalled = 0;
        } else if (++stalled >= 8) {
          boundary_budget = 0;
        }
      }
    }
    fix_boundaries(d);
    changed = n > 0;
  }
  span.attr("rounds", static_cast<std::uint64_t>(s.rounds))
      .attr("reduced_spiders", static_cast<std::uint64_t>(d.num_spiders()));
  return s;
}

std::size_t reduced_t_count(const ir::Circuit& circuit) {
  ZXDiagram d = to_diagram(circuit);
  clifford_simp(d);
  return d.t_count();
}

}  // namespace qdt::zx
