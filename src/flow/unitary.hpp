// qdt::flow — exact small-matrix utilities shared by the abstract domains
// and the certificate checker: dense expansion of an operation (controls
// included), product-state factorization, stabilizer-state classification,
// and matrix-verified commutation.
//
// Everything here is bounded by kDenseCap qubits (64 amplitudes), so the
// worst case stays microseconds — the dataflow pass and the commutation
// DAG call these per operation pair.
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/eps.hpp"
#include "ir/operation.hpp"

namespace qdt::flow {

/// Widest operation the dense helpers expand (2^6 = 64 amplitudes).
inline constexpr std::size_t kDenseCap = 6;

/// Row-major dense 2^k x 2^k matrix of the full operation (base gate plus
/// controls) over op.qubits() order: qubits()[i] is index bit i, matching
/// gate_matrix4's target[0]-is-less-significant convention. Requires
/// op.is_unitary() and op.num_qubits() <= kDenseCap.
std::vector<Complex> op_unitary(const ir::Operation& op);

/// Embed op_unitary(op) into a 2^m x 2^m matrix over `m` wires, where
/// positions[i] is the wire index (bit) that op.qubits()[i] occupies.
std::vector<Complex> embed_unitary(const ir::Operation& op,
                                   const std::vector<std::size_t>& positions,
                                   std::size_t m);

/// True when the two operations provably commute: disjoint supports and
/// diagonal-diagonal pairs structurally, everything else by an exact
/// AB == BA matrix comparison over the qubit union (conservative false
/// when the union exceeds kDenseCap).
bool ops_commute(const ir::Operation& a, const ir::Operation& b);

/// Classify a unit 2-vector as one of the six stabilizer states: returns
/// (state index into flow::StateValue semantics, phase) such that
/// v == e^{i phase} * state, or nullopt when v is none of the six.
/// The int is 0..5 for Zero..MinusI (kept as int to avoid a cyclic
/// include with domain.hpp).
std::optional<std::pair<int, double>> classify_state_vector(
    const std::array<Complex, 2>& v);

/// Factor a 2^k amplitude vector into k unit single-qubit factors (bit i
/// of the index selects factor i's component), or nullopt when the vector
/// is entangled. The product of the factors equals `w` up to one overall
/// unit scalar.
std::optional<std::vector<std::array<Complex, 2>>> factor_product(
    const std::vector<Complex>& w, std::size_t k);

}  // namespace qdt::flow
