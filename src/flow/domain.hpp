// qdt::flow — abstract interpretation over circuits: the constant-state
// domain.
//
// The lattice tracks, per qubit, whether the wire is *provably* in one of
// the six single-qubit stabilizer states (|0>, |1>, |+>, |->, |+i>, |-i>)
// at a given program point. Bottom marks an unreachable/uninitialized
// value, Top "any state, possibly entangled". The invariant every transfer
// function preserves: a non-Top value means the qubit is in exactly that
// pure product state — in particular, it is *not* entangled with anything.
//
// The engine is a forward worklist pass: on the straight-line circuits the
// IR encodes today it converges in one in-order sweep, but the transfer
// functions are written against an explicit state map so the same engine
// carries over to branching IRs.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/eps.hpp"
#include "ir/circuit.hpp"
#include "ir/operation.hpp"

namespace qdt::flow {

/// The per-qubit constant-state lattice: Bottom < {six states} < Top.
enum class StateValue : std::uint8_t {
  Bottom,  // unreachable / not yet computed
  Zero,    // |0>
  One,     // |1>
  Plus,    // |+>  = (|0> + |1>)/sqrt(2)
  Minus,   // |->  = (|0> - |1>)/sqrt(2)
  PlusI,   // |+i> = (|0> + i|1>)/sqrt(2)
  MinusI,  // |-i> = (|0> - i|1>)/sqrt(2)
  Top,     // unknown, possibly entangled
};

const char* state_name(StateValue v);

/// Least upper bound.
StateValue join(StateValue a, StateValue b);

/// True for the six concrete states (not Bottom, not Top).
inline bool is_known(StateValue v) {
  return v != StateValue::Bottom && v != StateValue::Top;
}

/// True for the computational-basis states |0> / |1>.
inline bool is_basis(StateValue v) {
  return v == StateValue::Zero || v == StateValue::One;
}

/// Exact amplitudes of a known state. Requires is_known(v).
std::array<Complex, 2> state_vector(StateValue v);

/// What one transfer step learned about the operation itself.
struct OpEffect {
  /// The operation provably acts as e^{i phase} * identity on the global
  /// state, so deleting it is semantics-preserving up to that phase.
  bool identity = false;
  /// The phase (radians) the operation contributes when identity is true.
  double phase_radians = 0.0;
};

/// Abstract transfer of one operation: updates `states` in place and
/// reports whether the op is provably a (phased) identity. Sound under the
/// product-state invariant above; `states` must have one entry per circuit
/// qubit.
OpEffect transfer_op(const ir::Operation& op, std::vector<StateValue>& states);

/// Result of running the dataflow engine over a whole circuit.
struct StateAnalysis {
  /// Fixpoint states after the last operation.
  std::vector<StateValue> final_states;
  /// (op, qubit) incidences whose in-state was one of the six known
  /// constants, over all non-barrier incidences.
  std::size_t known_incidences = 0;
  std::size_t total_incidences = 0;
  /// known_incidences / max(total_incidences, 1).
  double coverage = 0.0;
  /// Operations the lattice proves act as (phased) identities.
  std::size_t identity_ops = 0;
};

/// Run the worklist engine from the all-|0> initial state to fixpoint.
StateAnalysis analyze_states(const ir::Circuit& circuit);

}  // namespace qdt::flow
