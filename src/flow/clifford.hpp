// qdt::flow — the Clifford propagation domain: classify operations against
// the Clifford group, segment a circuit into maximal Clifford regions, and
// build the commutation DAG whose edges exist only where two operations
// provably fail to commute.
//
// The region segmentation is what routes fully-Clifford circuits (and
// Clifford prefixes) to the stabilizer backend; the DAG is the licence for
// long-range cancellation the window-bounded peephole scan cannot see.
#pragma once

#include <cstddef>
#include <vector>

#include "common/phase.hpp"
#include "ir/circuit.hpp"
#include "ir/operation.hpp"

namespace qdt::flow {

/// Clifford classification of a Z-rotation-like phase: 0 = identity,
/// 1 = S, 2 = Z, 3 = Sdg; -1 = non-Clifford. (Same classes as the
/// stabilizer backend's dispatcher.)
int z_phase_class(const Phase& p);

/// True when the operation is expressible on a stabilizer tableau:
/// Clifford unitaries (including singly-controlled Paulis) plus the
/// non-unitary measure / reset / barrier kinds.
bool is_clifford_op(const ir::Operation& op);

/// A maximal contiguous run of tableau-expressible operations
/// [begin, end) in circuit order. Non-Clifford unitaries split regions;
/// measure / reset / barrier do not.
struct CliffordRegion {
  std::size_t begin = 0;
  std::size_t end = 0;
  /// Unitary gates inside the region (barriers and measurements excluded).
  std::size_t unitary_gates = 0;
};

/// Segment the circuit into its maximal Clifford regions, in order.
/// Empty runs are dropped, so a fully non-Clifford circuit yields {} and a
/// fully Clifford one yields a single region covering every op.
std::vector<CliffordRegion> clifford_regions(const ir::Circuit& circuit);

/// Commutation DAG over the circuit's operations. preds[j] lists the
/// operations i < j that j genuinely fails to commute with — each wire
/// keeps only the *nearest* blocking predecessor, so the edge set is the
/// transitive reduction a scheduler or cancellation pass walks. Barriers
/// and non-unitary operations block every later op sharing a wire.
struct CommutationDag {
  std::vector<std::vector<std::size_t>> preds;
  std::size_t edges = 0;
};

CommutationDag build_commutation_dag(const ir::Circuit& circuit);

}  // namespace qdt::flow
