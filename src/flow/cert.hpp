// qdt::flow — the independent certificate checker.
//
// check_rewrites replays an optimizer run from the original circuit using
// nothing but the rewrite list's justifications: lattice fact claims are
// re-verified against a concrete per-qubit amplitude interpreter (strictly
// more precise than the abstract domain), identity claims are re-derived
// by eigen-checking the dense operation matrix, commutation paths are
// re-walked gate by gate with exact matrix commutation, and the replayed
// circuit must reproduce the optimizer's output structurally, phase
// included. Any discrepancy is a hard Error(Internal) — counted under
// qdt.flow.cert.rejected — because it means the optimizer emitted a
// rewrite its own certificate does not support.
#pragma once

#include <vector>

#include "flow/opt.hpp"
#include "ir/circuit.hpp"

namespace qdt::flow::cert {

/// Verify that `rewrites` soundly transform `original` into `optimized`
/// with total global phase `expected_phase_radians`. Throws
/// Error(Internal) on the first certificate violation.
void check_rewrites(const ir::Circuit& original,
                    const std::vector<Rewrite>& rewrites,
                    const ir::Circuit& optimized,
                    double expected_phase_radians);

}  // namespace qdt::flow::cert
