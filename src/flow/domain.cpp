#include "flow/domain.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "flow/unitary.hpp"
#include "ir/gate.hpp"
#include "obs/obs.hpp"

namespace qdt::flow {

namespace {

obs::Counter& g_passes = obs::counter("qdt.flow.dataflow.passes");

constexpr double kTol = 1e-9;

StateValue state_from_index(int s) {
  switch (s) {
    case 0:
      return StateValue::Zero;
    case 1:
      return StateValue::One;
    case 2:
      return StateValue::Plus;
    case 3:
      return StateValue::Minus;
    case 4:
      return StateValue::PlusI;
    default:
      return StateValue::MinusI;
  }
}

/// Diagonal entry of the base gate selected by the targets' basis bits.
Complex base_diagonal_entry(const ir::Operation& op, std::size_t tindex) {
  if (op.targets().size() == 1) {
    return op.matrix2()(tindex, tindex);
  }
  return op.matrix4()(tindex, tindex);
}

/// Dense evolution of an operation whose qubits are all in known states:
/// returns the identity verdict and the refined per-qubit states.
OpEffect transfer_dense(const ir::Operation& op, const std::vector<ir::Qubit>& qs,
                        std::vector<StateValue>& states) {
  const std::size_t k = qs.size();
  const std::size_t dim = std::size_t{1} << k;
  std::vector<Complex> in(dim, Complex{0.0, 0.0});
  // Product state over op-qubit order: bit i of the index is qs[i].
  for (std::size_t j = 0; j < dim; ++j) {
    Complex amp{1.0, 0.0};
    for (std::size_t i = 0; i < k; ++i) {
      amp *= state_vector(states[qs[i]])[(j >> i) & 1U];
    }
    in[j] = amp;
  }
  const std::vector<Complex> u = op_unitary(op);
  std::vector<Complex> out(dim, Complex{0.0, 0.0});
  for (std::size_t r = 0; r < dim; ++r) {
    Complex acc{0.0, 0.0};
    for (std::size_t c = 0; c < dim; ++c) {
      acc += u[r * dim + c] * in[c];
    }
    out[r] = acc;
  }
  // Identity up to phase: out == e^{i phi} * in, verified entrywise.
  // The inner product alone is too blunt: a near-identity rotation by
  // epsilon has |<in|out>| = 1 - O(eps^2) but deviates by O(eps) per
  // amplitude, so a fidelity-only test at 1e-9 would "prove" identities
  // that observably shift the state by ~1e-4.
  Complex inner{0.0, 0.0};
  for (std::size_t j = 0; j < dim; ++j) {
    inner += std::conj(in[j]) * out[j];
  }
  if (std::abs(std::abs(inner) - 1.0) < kTol) {
    const Complex phase = inner / std::abs(inner);
    bool entrywise = true;
    for (std::size_t j = 0; j < dim; ++j) {
      if (std::abs(out[j] - phase * in[j]) >= kTol) {
        entrywise = false;
        break;
      }
    }
    if (entrywise) {
      return {.identity = true, .phase_radians = std::arg(inner)};
    }
  }
  // Not an identity: refine states from the (possibly entangled) result.
  const auto factors = factor_product(out, k);
  if (!factors.has_value()) {
    for (const ir::Qubit q : qs) {
      states[q] = StateValue::Top;
    }
    return {};
  }
  for (std::size_t i = 0; i < k; ++i) {
    const auto cls = classify_state_vector((*factors)[i]);
    states[qs[i]] =
        cls.has_value() ? state_from_index(cls->first) : StateValue::Top;
  }
  return {};
}

}  // namespace

const char* state_name(StateValue v) {
  switch (v) {
    case StateValue::Bottom:
      return "bottom";
    case StateValue::Zero:
      return "|0>";
    case StateValue::One:
      return "|1>";
    case StateValue::Plus:
      return "|+>";
    case StateValue::Minus:
      return "|->";
    case StateValue::PlusI:
      return "|+i>";
    case StateValue::MinusI:
      return "|-i>";
    case StateValue::Top:
      return "top";
  }
  return "?";
}

StateValue join(StateValue a, StateValue b) {
  if (a == b) {
    return a;
  }
  if (a == StateValue::Bottom) {
    return b;
  }
  if (b == StateValue::Bottom) {
    return a;
  }
  return StateValue::Top;
}

std::array<Complex, 2> state_vector(StateValue v) {
  switch (v) {
    case StateValue::Zero:
      return {Complex{1.0, 0.0}, Complex{0.0, 0.0}};
    case StateValue::One:
      return {Complex{0.0, 0.0}, Complex{1.0, 0.0}};
    case StateValue::Plus:
      return {Complex{kInvSqrt2, 0.0}, Complex{kInvSqrt2, 0.0}};
    case StateValue::Minus:
      return {Complex{kInvSqrt2, 0.0}, Complex{-kInvSqrt2, 0.0}};
    case StateValue::PlusI:
      return {Complex{kInvSqrt2, 0.0}, Complex{0.0, kInvSqrt2}};
    case StateValue::MinusI:
      return {Complex{kInvSqrt2, 0.0}, Complex{0.0, -kInvSqrt2}};
    case StateValue::Bottom:
    case StateValue::Top:
      break;
  }
  return {Complex{0.0, 0.0}, Complex{0.0, 0.0}};
}

OpEffect transfer_op(const ir::Operation& op,
                     std::vector<StateValue>& states) {
  if (op.is_barrier()) {
    return {};  // scheduling hint: the state flows through unchanged
  }
  if (op.is_reset()) {
    for (const ir::Qubit q : op.targets()) {
      states[q] = StateValue::Zero;
    }
    return {};
  }
  if (op.is_measurement()) {
    // A basis state measures deterministically and survives; anything else
    // collapses to an unknown basis state.
    for (const ir::Qubit q : op.targets()) {
      if (!is_basis(states[q])) {
        states[q] = StateValue::Top;
      }
    }
    return {};
  }

  // -- Unitary ---------------------------------------------------------------
  if (op.kind() == ir::GateKind::I && op.controls().empty()) {
    return {.identity = true, .phase_radians = 0.0};
  }
  // A control stuck in |0> never fires: the whole gate is the identity and
  // no state moves.
  for (const ir::Qubit c : op.controls()) {
    if (states[c] == StateValue::Zero) {
      return {.identity = true, .phase_radians = 0.0};
    }
  }
  const std::vector<ir::Qubit> qs = op.qubits();
  const bool all_known = std::all_of(qs.begin(), qs.end(), [&](ir::Qubit q) {
    return is_known(states[q]);
  });
  if (all_known && qs.size() <= kDenseCap) {
    return transfer_dense(op, qs, states);
  }
  if (op.is_diagonal()) {
    const bool targets_basis =
        std::all_of(op.targets().begin(), op.targets().end(),
                    [&](ir::Qubit q) { return is_basis(states[q]); });
    if (targets_basis) {
      std::size_t tindex = 0;
      for (std::size_t i = 0; i < op.targets().size(); ++i) {
        if (states[op.targets()[i]] == StateValue::One) {
          tindex |= std::size_t{1} << i;
        }
      }
      const Complex d = base_diagonal_entry(op, tindex);
      if (std::abs(d - Complex{1.0, 0.0}) < kTol) {
        // diag(..., 1 at the only reachable target entry): exact identity
        // regardless of the controls.
        return {.identity = true, .phase_radians = 0.0};
      }
      const bool controls_one =
          std::all_of(op.controls().begin(), op.controls().end(),
                      [&](ir::Qubit q) { return states[q] == StateValue::One; });
      if (op.controls().empty() || controls_one) {
        return {.identity = true, .phase_radians = std::arg(d)};
      }
      // The phase fires only on the all-ones control component: basis
      // targets survive, superposed controls pick up correlated phases.
      for (const ir::Qubit c : op.controls()) {
        if (!is_basis(states[c])) {
          states[c] = StateValue::Top;
        }
      }
      return {};
    }
  }
  for (const ir::Qubit q : qs) {
    states[q] = StateValue::Top;
  }
  return {};
}

StateAnalysis analyze_states(const ir::Circuit& circuit) {
  StateAnalysis out;
  std::vector<StateValue> states(circuit.num_qubits(), StateValue::Zero);
  // Worklist over op indices. Straight-line circuits drain it in one
  // in-order sweep; the queue structure is what a branching IR would grow
  // into (join at merge points, re-enqueue on change).
  std::deque<std::size_t> worklist;
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    worklist.push_back(i);
  }
  while (!worklist.empty()) {
    const std::size_t i = worklist.front();
    worklist.pop_front();
    const ir::Operation& op = circuit[i];
    if (!op.is_barrier()) {
      for (const ir::Qubit q : op.qubits()) {
        ++out.total_incidences;
        if (is_known(states[q])) {
          ++out.known_incidences;
        }
      }
    }
    if (transfer_op(op, states).identity) {
      ++out.identity_ops;
    }
  }
  out.final_states = std::move(states);
  out.coverage =
      static_cast<double>(out.known_incidences) /
      static_cast<double>(std::max<std::size_t>(out.total_incidences, 1));
  g_passes.add();
  return out;
}

}  // namespace qdt::flow
