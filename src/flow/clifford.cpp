#include "flow/clifford.hpp"

#include <algorithm>

#include "flow/unitary.hpp"
#include "ir/gate.hpp"

namespace qdt::flow {

using ir::GateKind;
using ir::Operation;
using ir::Qubit;

int z_phase_class(const Phase& p) {
  if (p.is_zero()) {
    return 0;
  }
  if (p == Phase::pi_2()) {
    return 1;
  }
  if (p == Phase::pi()) {
    return 2;
  }
  if (p == Phase::minus_pi_2()) {
    return 3;
  }
  return -1;
}

bool is_clifford_op(const Operation& op) {
  if (!op.is_unitary()) {
    return true;  // measure / reset / barrier run fine on a tableau
  }
  const std::size_t nc = op.controls().size();
  switch (op.kind()) {
    case GateKind::I:
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
      return nc <= 1;
    case GateKind::H:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::SX:
    case GateKind::SXdg:
    case GateKind::Swap:
    case GateKind::ISwap:
    case GateKind::ISwapDg:
      return nc == 0;
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::RX:
    case GateKind::RY:
      return nc == 0 && z_phase_class(op.params()[0]) >= 0;
    default:
      return false;
  }
}

std::vector<CliffordRegion> clifford_regions(const ir::Circuit& circuit) {
  std::vector<CliffordRegion> regions;
  CliffordRegion cur;
  bool open = false;
  const auto& ops = circuit.ops();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Operation& op = ops[i];
    if (op.is_unitary() && !is_clifford_op(op)) {
      if (open) {
        cur.end = i;
        regions.push_back(cur);
        open = false;
      }
      continue;
    }
    if (!open) {
      cur = CliffordRegion{.begin = i, .end = i, .unitary_gates = 0};
      open = true;
    }
    if (op.is_unitary()) {
      ++cur.unitary_gates;
    }
  }
  if (open) {
    cur.end = ops.size();
    regions.push_back(cur);
  }
  return regions;
}

CommutationDag build_commutation_dag(const ir::Circuit& circuit) {
  const auto& ops = circuit.ops();
  CommutationDag dag;
  dag.preds.assign(ops.size(), {});
  // blocker[q]: most recent op that later ops on wire q may fail to commute
  // with. Walking only the per-wire nearest candidates keeps the scan close
  // to linear while still catching every true dependency: if j fails to
  // commute with some earlier i, it also fails against the chain of
  // blockers linking i to j on their shared wire, or commutes past each of
  // them — which ops_commute decides exactly.
  const std::size_t n = circuit.num_qubits();
  std::vector<std::size_t> blocker(n, static_cast<std::size_t>(-1));
  for (std::size_t j = 0; j < ops.size(); ++j) {
    const Operation& b = ops[j];
    const auto qs = b.qubits();
    const bool b_hard = !b.is_unitary();  // barrier / measure / reset
    std::vector<std::size_t> cands;
    for (const Qubit q : qs) {
      const std::size_t i = blocker[q];
      if (i != static_cast<std::size_t>(-1) &&
          std::find(cands.begin(), cands.end(), i) == cands.end()) {
        cands.push_back(i);
      }
    }
    for (const std::size_t i : cands) {
      const Operation& a = ops[i];
      if (b_hard || !a.is_unitary() || !ops_commute(a, b)) {
        dag.preds[j].push_back(i);
        ++dag.edges;
      }
    }
    std::sort(dag.preds[j].begin(), dag.preds[j].end());
    for (const Qubit q : qs) {
      blocker[q] = j;
    }
  }
  return dag;
}

}  // namespace qdt::flow
