#include "flow/unitary.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/matrix.hpp"
#include "guard/error.hpp"
#include "ir/gate.hpp"

namespace qdt::flow {

namespace {

constexpr double kTol = 1e-9;

/// Dense base-gate matrix (1q or 2q) as a row-major vector.
std::vector<Complex> base_matrix(const ir::Operation& op) {
  const std::size_t t = op.targets().size();
  if (t == 1) {
    const Mat2 m = op.matrix2();
    return {m.e.begin(), m.e.end()};
  }
  if (t == 2) {
    const Mat4 m = op.matrix4();
    return {m.e.begin(), m.e.end()};
  }
  throw Error::internal("flow: base gate with " + std::to_string(t) +
                        " targets has no dense matrix");
}

}  // namespace

std::vector<Complex> op_unitary(const ir::Operation& op) {
  if (!op.is_unitary()) {
    throw Error::internal("flow: op_unitary on a non-unitary operation");
  }
  const std::size_t k = op.num_qubits();
  if (k > kDenseCap) {
    throw Error::internal("flow: op_unitary beyond the dense cap");
  }
  const std::size_t tbits = op.targets().size();
  const std::size_t dim = std::size_t{1} << k;
  const std::size_t tdim = std::size_t{1} << tbits;
  const std::size_t all_ctrl = (std::size_t{1} << (k - tbits)) - 1;
  const std::vector<Complex> base = base_matrix(op);
  std::vector<Complex> u(dim * dim, Complex{0.0, 0.0});
  for (std::size_t col = 0; col < dim; ++col) {
    const std::size_t ctrl = col >> tbits;
    if (ctrl == all_ctrl) {
      const std::size_t tcol = col & (tdim - 1);
      for (std::size_t trow = 0; trow < tdim; ++trow) {
        u[((ctrl << tbits) | trow) * dim + col] = base[trow * tdim + tcol];
      }
    } else {
      u[col * dim + col] = Complex{1.0, 0.0};
    }
  }
  return u;
}

std::vector<Complex> embed_unitary(const ir::Operation& op,
                                   const std::vector<std::size_t>& positions,
                                   std::size_t m) {
  const std::size_t k = op.num_qubits();
  if (positions.size() != k || m > kDenseCap) {
    throw Error::internal("flow: bad embed_unitary arguments");
  }
  const std::vector<Complex> u = op_unitary(op);
  const std::size_t kdim = std::size_t{1} << k;
  const std::size_t dim = std::size_t{1} << m;
  const auto gather = [&](std::size_t full) {
    std::size_t sub = 0;
    for (std::size_t i = 0; i < k; ++i) {
      sub |= ((full >> positions[i]) & 1U) << i;
    }
    return sub;
  };
  const auto scatter = [&](std::size_t sub, std::size_t rest) {
    std::size_t full = rest;
    for (std::size_t i = 0; i < k; ++i) {
      full &= ~(std::size_t{1} << positions[i]);
      full |= ((sub >> i) & 1U) << positions[i];
    }
    return full;
  };
  std::vector<Complex> out(dim * dim, Complex{0.0, 0.0});
  for (std::size_t col = 0; col < dim; ++col) {
    const std::size_t sub_col = gather(col);
    for (std::size_t sub_row = 0; sub_row < kdim; ++sub_row) {
      const Complex e = u[sub_row * kdim + sub_col];
      if (e == Complex{0.0, 0.0}) {
        continue;
      }
      out[scatter(sub_row, col) * dim + col] = e;
    }
  }
  return out;
}

bool ops_commute(const ir::Operation& a, const ir::Operation& b) {
  if (!a.is_unitary() || !b.is_unitary()) {
    return false;
  }
  const auto aq = a.qubits();
  const auto bq = b.qubits();
  const bool shares = std::any_of(aq.begin(), aq.end(), [&](ir::Qubit q) {
    return std::find(bq.begin(), bq.end(), q) != bq.end();
  });
  if (!shares) {
    return true;  // disjoint supports always commute
  }
  if (a.is_diagonal() && b.is_diagonal()) {
    return true;  // both diagonal in the computational basis
  }
  // Exact check over the union: AB == BA entry-wise.
  std::vector<ir::Qubit> wires = aq;
  for (const ir::Qubit q : bq) {
    if (std::find(wires.begin(), wires.end(), q) == wires.end()) {
      wires.push_back(q);
    }
  }
  const std::size_t m = wires.size();
  if (m > kDenseCap) {
    return false;  // conservative: too wide to verify exactly
  }
  const auto positions_of = [&](const std::vector<ir::Qubit>& qs) {
    std::vector<std::size_t> pos;
    pos.reserve(qs.size());
    for (const ir::Qubit q : qs) {
      pos.push_back(static_cast<std::size_t>(
          std::find(wires.begin(), wires.end(), q) - wires.begin()));
    }
    return pos;
  };
  const std::vector<Complex> ua = embed_unitary(a, positions_of(aq), m);
  const std::vector<Complex> ub = embed_unitary(b, positions_of(bq), m);
  const std::size_t dim = std::size_t{1} << m;
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      Complex ab{0.0, 0.0};
      Complex ba{0.0, 0.0};
      for (std::size_t t = 0; t < dim; ++t) {
        ab += ua[r * dim + t] * ub[t * dim + c];
        ba += ub[r * dim + t] * ua[t * dim + c];
      }
      if (std::abs(ab - ba) > kTol) {
        return false;
      }
    }
  }
  return true;
}

std::optional<std::pair<int, double>> classify_state_vector(
    const std::array<Complex, 2>& v) {
  static const std::array<std::array<Complex, 2>, 6> kStates = {{
      {Complex{1.0, 0.0}, Complex{0.0, 0.0}},                    // |0>
      {Complex{0.0, 0.0}, Complex{1.0, 0.0}},                    // |1>
      {Complex{kInvSqrt2, 0.0}, Complex{kInvSqrt2, 0.0}},        // |+>
      {Complex{kInvSqrt2, 0.0}, Complex{-kInvSqrt2, 0.0}},       // |->
      {Complex{kInvSqrt2, 0.0}, Complex{0.0, kInvSqrt2}},        // |+i>
      {Complex{kInvSqrt2, 0.0}, Complex{0.0, -kInvSqrt2}},       // |-i>
  }};
  for (int s = 0; s < 6; ++s) {
    const auto& ref = kStates[static_cast<std::size_t>(s)];
    const Complex inner = std::conj(ref[0]) * v[0] + std::conj(ref[1]) * v[1];
    if (std::abs(std::abs(inner) - 1.0) >= kTol) {
      continue;
    }
    // Entrywise confirmation: fidelity alone is quadratically blind to
    // per-amplitude drift, and a "known" verdict here licenses removals.
    const Complex phase = inner / std::abs(inner);
    if (std::abs(v[0] - phase * ref[0]) < kTol &&
        std::abs(v[1] - phase * ref[1]) < kTol) {
      return std::make_pair(s, std::arg(inner));
    }
  }
  return std::nullopt;
}

std::optional<std::vector<std::array<Complex, 2>>> factor_product(
    const std::vector<Complex>& w, std::size_t k) {
  if (w.size() != (std::size_t{1} << k)) {
    return std::nullopt;
  }
  // Anchor at the largest amplitude, read each factor off the anchor's
  // neighbors along one bit, then verify the reconstruction — a rank-1
  // check without any linear algebra.
  std::size_t anchor = 0;
  double best = 0.0;
  for (std::size_t j = 0; j < w.size(); ++j) {
    if (std::norm(w[j]) > best) {
      best = std::norm(w[j]);
      anchor = j;
    }
  }
  if (best < kTol) {
    return std::nullopt;
  }
  std::vector<std::array<Complex, 2>> factors(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t bit = std::size_t{1} << i;
    std::array<Complex, 2> f = {w[anchor & ~bit], w[anchor | bit]};
    const double norm = std::sqrt(std::norm(f[0]) + std::norm(f[1]));
    if (norm < kTol) {
      return std::nullopt;
    }
    factors[i] = {f[0] / norm, f[1] / norm};
  }
  // Overall scalar fixed at the anchor; then every amplitude must match.
  Complex anchor_prod{1.0, 0.0};
  for (std::size_t i = 0; i < k; ++i) {
    anchor_prod *= factors[i][(anchor >> i) & 1U];
  }
  if (std::abs(anchor_prod) < kTol) {
    return std::nullopt;
  }
  const Complex scale = w[anchor] / anchor_prod;
  for (std::size_t j = 0; j < w.size(); ++j) {
    Complex prod = scale;
    for (std::size_t i = 0; i < k; ++i) {
      prod *= factors[i][(j >> i) & 1U];
    }
    if (std::abs(prod - w[j]) > 1e-8) {
      return std::nullopt;
    }
  }
  return factors;
}

}  // namespace qdt::flow
