// qdt::flow — the certified static optimizer.
//
// optimize() alternates two rewrite passes to a fixpoint: (A) a dataflow
// pass that deletes gates the constant-state lattice proves act as (phased)
// identities, folding the phases into one tracked global phase; (B) a
// commutation pass that cancels adjoint pairs and merges same-axis
// rotations across arbitrary distances, licensed by exact matrix
// commutation — the long-range rewrites a bounded peephole window cannot
// see. An optional final step compacts unused qubit wires away.
//
// Every rewrite carries a machine-checkable justification (the lattice
// facts or the commutation path that licensed it). Unless disabled, the
// whole rewrite list is re-verified by the independent checker in
// flow/cert.hpp before the optimized circuit is returned; a checker
// failure is a hard Error(Internal) — the optimizer never emits a circuit
// its own certificate does not support.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/phase.hpp"
#include "flow/domain.hpp"
#include "ir/circuit.hpp"
#include "ir/operation.hpp"

namespace qdt::flow {

struct OptOptions {
  /// Drop qubit wires no surviving operation touches, renumbering the rest.
  bool compact_wires = true;
  /// Only apply rewrites whose phase contribution is exactly zero, so the
  /// optimized circuit's state vector matches literally (not just up to
  /// global phase). What `qdt serve` uses for want_state requests.
  bool require_zero_phase = false;
  /// Run the independent certificate checker over the rewrite list.
  bool certify = true;
  /// Cap on A/B pass alternations before declaring fixpoint.
  std::size_t max_passes = 8;
  /// Forward-scan cap (in operations) for the commutation pass.
  std::size_t commute_window = 4096;
};

/// One applied rewrite plus the justification that licensed it. Operation
/// indices refer to the circuit as it stood at the *start of the rewrite's
/// pass* (rewrites of one pass are batched; deletions apply descending).
struct Rewrite {
  enum class Kind : std::uint8_t {
    DeadGate,       // provably identity with zero phase; deleted
    FoldPhase,      // provably e^{i phase} * identity; deleted, phase kept
    CancelPair,     // op and partner are adjoint across a commuting gap
    MergeRotation,  // op and partner merged into `merged` at op's slot
    CompactWires,   // unused wires dropped, survivors renumbered
  };

  Kind kind = Kind::DeadGate;
  /// Which A/B alternation emitted this rewrite (0-based).
  std::uint32_t pass = 0;
  /// Primary operation index (pass-start coordinates).
  std::size_t op = 0;
  /// Second operation for CancelPair / MergeRotation.
  std::size_t partner = 0;
  /// Global-phase contribution of applying this rewrite (radians).
  double phase_radians = 0.0;
  /// Replacement operation for MergeRotation.
  ir::Operation merged;
  /// CompactWires: old wire -> new wire, kInvalidWire for dropped wires.
  std::vector<ir::Qubit> wire_map;
  /// DeadGate / FoldPhase: the abstract in-states of op.qubits() — the
  /// lattice facts the deletion rests on, re-checked by the certifier.
  std::vector<StateValue> fact_states;
  /// Human-readable one-liner for --json / logs.
  std::string note;
};

inline constexpr ir::Qubit kInvalidWire = static_cast<ir::Qubit>(-1);

const char* rewrite_kind_name(Rewrite::Kind k);

struct OptResult {
  ir::Circuit circuit;
  std::vector<Rewrite> rewrites;
  /// Total phase the deleted/merged gates contributed: the optimized
  /// circuit equals e^{i phase} times the original on the initial all-|0>
  /// state. Exact rational form when representable, radians always.
  Phase global_phase;
  double global_phase_radians = 0.0;
  std::size_t gates_before = 0;  // unitary gates (CircuitStats::total_gates)
  std::size_t gates_after = 0;
  std::size_t ops_before = 0;    // all operations, barriers included
  std::size_t ops_after = 0;
  std::size_t wires_before = 0;
  std::size_t wires_after = 0;
  /// Old wire -> new wire (identity when compaction is off or a no-op).
  std::vector<ir::Qubit> wire_map;
  /// True when the certificate checker verified every rewrite.
  bool certified = false;
};

/// Optimize `circuit` under the all-|0> initial state. Throws
/// Error(Internal) if certification is enabled and any rewrite fails the
/// independent checker.
OptResult optimize(const ir::Circuit& circuit, const OptOptions& options = {});

}  // namespace qdt::flow
