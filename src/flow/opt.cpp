#include "flow/opt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <utility>

#include "flow/cert.hpp"
#include "flow/unitary.hpp"
#include "guard/budget.hpp"
#include "ir/gate.hpp"
#include "obs/obs.hpp"
#include "trace/trace.hpp"

namespace qdt::flow {

namespace {

using ir::GateKind;
using ir::Operation;
using ir::Qubit;

obs::Counter& g_runs = obs::counter("qdt.flow.opt.runs");
obs::Counter& g_removed = obs::counter("qdt.flow.opt.removed_gates");
obs::Counter& g_merged = obs::counter("qdt.flow.opt.merged_gates");
obs::Counter& g_folded = obs::counter("qdt.flow.opt.folded_phases");
obs::Counter& g_compacted = obs::counter("qdt.flow.opt.compacted_wires");

constexpr double kTol = 1e-9;

bool phase_is_zero(double r) {
  return std::abs(Complex{std::cos(r) - 1.0, std::sin(r)}) < kTol;
}

bool is_rotation_kind(GateKind k) {
  switch (k) {
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::RZZ:
    case GateKind::RXX:
      return true;
    default:
      return false;
  }
}

/// Phase phi such that U_b * U_a == e^{i phi} * U_target over the ops'
/// shared qubit list, where target is `merged` (or the identity when null).
/// nullopt when the product is not proportional to the target — the
/// structural match was a mirage (e.g. a relative phase hiding in a
/// control block), so the rewrite must not fire.
std::optional<double> pair_phase(const Operation& a, const Operation& b,
                                 const Operation* merged) {
  if (a.num_qubits() > kDenseCap || b.qubits() != a.qubits()) {
    return std::nullopt;
  }
  const std::vector<Complex> ua = op_unitary(a);
  const std::vector<Complex> ub = op_unitary(b);
  const std::size_t dim = std::size_t{1} << a.num_qubits();
  std::vector<Complex> target;
  if (merged != nullptr) {
    if (merged->qubits() != a.qubits()) {
      return std::nullopt;
    }
    target = op_unitary(*merged);
  } else {
    target.assign(dim * dim, Complex{0.0, 0.0});
    for (std::size_t d = 0; d < dim; ++d) {
      target[d * dim + d] = Complex{1.0, 0.0};
    }
  }
  std::vector<Complex> prod(dim * dim, Complex{0.0, 0.0});
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      Complex acc{0.0, 0.0};
      for (std::size_t t = 0; t < dim; ++t) {
        acc += ub[r * dim + t] * ua[t * dim + c];
      }
      prod[r * dim + c] = acc;
    }
  }
  std::size_t best = 0;
  double best_norm = 0.0;
  for (std::size_t e = 0; e < target.size(); ++e) {
    if (std::norm(target[e]) > best_norm) {
      best_norm = std::norm(target[e]);
      best = e;
    }
  }
  if (best_norm < kTol) {
    return std::nullopt;
  }
  const Complex scale = prod[best] / target[best];
  if (std::abs(std::abs(scale) - 1.0) > 1e-8) {
    return std::nullopt;
  }
  for (std::size_t e = 0; e < target.size(); ++e) {
    if (std::abs(prod[e] - scale * target[e]) > 1e-8) {
      return std::nullopt;
    }
  }
  return std::arg(scale);
}

/// Pass A: delete gates the constant-state lattice proves are (phased)
/// identities, recording the licensing facts.
bool run_state_pass(ir::Circuit& cur, std::uint32_t pass_no,
                    const OptOptions& options, std::vector<Rewrite>& out,
                    double& phase_acc) {
  guard::check_deadline();
  std::vector<StateValue> states(cur.num_qubits(), StateValue::Zero);
  std::vector<Rewrite> batch;
  for (std::size_t i = 0; i < cur.size(); ++i) {
    const Operation& op = cur[i];
    std::vector<StateValue> facts;
    if (op.is_unitary()) {
      for (const Qubit q : op.qubits()) {
        facts.push_back(states[q]);
      }
    }
    const OpEffect eff = transfer_op(op, states);
    if (!eff.identity || !op.is_unitary()) {
      continue;
    }
    const bool zero = phase_is_zero(eff.phase_radians);
    if (!zero && options.require_zero_phase) {
      continue;
    }
    Rewrite r;
    r.kind = zero ? Rewrite::Kind::DeadGate : Rewrite::Kind::FoldPhase;
    r.pass = pass_no;
    r.op = i;
    r.phase_radians = zero ? 0.0 : eff.phase_radians;
    r.fact_states = std::move(facts);
    r.note = op.str() + (zero ? ": provably identity on the abstract state"
                              : ": folds into the global phase");
    batch.push_back(std::move(r));
  }
  if (batch.empty()) {
    return false;
  }
  std::vector<char> removed(cur.size(), 0);
  for (const Rewrite& r : batch) {
    removed[r.op] = 1;
    phase_acc += r.phase_radians;
  }
  ir::Circuit next(cur.num_qubits(), cur.name());
  for (std::size_t i = 0; i < cur.size(); ++i) {
    if (removed[i] == 0) {
      next.append(cur[i]);
    }
  }
  cur = std::move(next);
  std::move(batch.begin(), batch.end(), std::back_inserter(out));
  return true;
}

/// Pass B: cancel adjoint pairs and merge same-axis rotations across any
/// distance where every intervening shared-wire gate provably commutes.
bool run_commute_pass(ir::Circuit& cur, std::uint32_t pass_no,
                      const OptOptions& options, std::vector<Rewrite>& out,
                      double& phase_acc) {
  const auto& ops = cur.ops();
  std::vector<char> consumed(ops.size(), 0);
  std::vector<std::optional<Operation>> replaced(ops.size());
  std::vector<Rewrite> batch;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (consumed[i] != 0 || !ops[i].is_unitary()) {
      continue;
    }
    guard::check_deadline();
    const Operation& a = ops[i];
    const Operation inverse = a.adjoint();
    const auto aq = a.qubits();
    std::size_t steps = 0;
    for (std::size_t j = i + 1; j < ops.size() && steps < options.commute_window;
         ++j, ++steps) {
      const Operation& b = ops[j];
      if (b.is_barrier()) {
        break;  // barriers exist to block exactly this kind of motion
      }
      const auto bq = b.qubits();
      const bool shares = std::any_of(aq.begin(), aq.end(), [&](Qubit q) {
        return std::find(bq.begin(), bq.end(), q) != bq.end();
      });
      if (!shares) {
        continue;
      }
      if (!b.is_unitary()) {
        break;  // measurement / reset pins the wire
      }
      if (consumed[j] == 0) {
        if (b == inverse) {
          const auto phi = pair_phase(a, b, nullptr);
          if (phi.has_value() &&
              (!options.require_zero_phase || phase_is_zero(*phi))) {
            Rewrite r;
            r.kind = Rewrite::Kind::CancelPair;
            r.pass = pass_no;
            r.op = i;
            r.partner = j;
            r.phase_radians = phase_is_zero(*phi) ? 0.0 : *phi;
            r.note = a.str() + " cancels against its adjoint";
            batch.push_back(std::move(r));
            consumed[i] = consumed[j] = 1;
            break;
          }
        } else if (b.kind() == a.kind() && b.targets() == a.targets() &&
                   b.controls() == a.controls() &&
                   is_rotation_kind(a.kind())) {
          Operation merged(a.kind(), a.targets(), a.controls(),
                           {a.params()[0] + b.params()[0]});
          const auto phi = pair_phase(a, b, &merged);
          if (phi.has_value() &&
              (!options.require_zero_phase || phase_is_zero(*phi))) {
            Rewrite r;
            r.kind = Rewrite::Kind::MergeRotation;
            r.pass = pass_no;
            r.op = i;
            r.partner = j;
            r.phase_radians = phase_is_zero(*phi) ? 0.0 : *phi;
            r.merged = merged;
            r.note = a.str() + " absorbs " + b.str();
            batch.push_back(std::move(r));
            replaced[i] = std::move(merged);
            consumed[j] = 1;
            break;
          }
        }
      }
      if (ops_commute(a, b)) {
        continue;
      }
      break;
    }
  }
  if (batch.empty()) {
    return false;
  }
  for (const Rewrite& r : batch) {
    phase_acc += r.phase_radians;
  }
  ir::Circuit next(cur.num_qubits(), cur.name());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (consumed[i] != 0) {
      continue;
    }
    next.append(replaced[i].has_value() ? *replaced[i] : ops[i]);
  }
  cur = std::move(next);
  std::move(batch.begin(), batch.end(), std::back_inserter(out));
  return true;
}

/// Drop wires no surviving non-barrier operation touches.
void run_compaction(ir::Circuit& cur, std::uint32_t pass_no,
                    std::vector<Rewrite>& out,
                    std::vector<Qubit>& wire_map) {
  const std::size_t n = cur.num_qubits();
  std::vector<char> used(n, 0);
  for (const Operation& op : cur.ops()) {
    if (op.is_barrier()) {
      continue;
    }
    for (const Qubit q : op.qubits()) {
      used[q] = 1;
    }
  }
  const std::size_t live = static_cast<std::size_t>(
      std::count(used.begin(), used.end(), char{1}));
  if (live == n) {
    return;  // nothing to drop
  }
  std::vector<Qubit> map(n, kInvalidWire);
  Qubit next_wire = 0;
  for (std::size_t q = 0; q < n; ++q) {
    if (used[q] != 0) {
      map[q] = next_wire++;
    }
  }
  ir::Circuit next(std::max<std::size_t>(live, 1), cur.name());
  for (const Operation& op : cur.ops()) {
    if (op.is_barrier()) {
      next.barrier();
      continue;
    }
    std::vector<Qubit> targets;
    std::vector<Qubit> controls;
    for (const Qubit q : op.targets()) {
      targets.push_back(map[q]);
    }
    for (const Qubit q : op.controls()) {
      controls.push_back(map[q]);
    }
    next.append(Operation(op.kind(), std::move(targets), std::move(controls),
                          op.params()));
  }
  Rewrite r;
  r.kind = Rewrite::Kind::CompactWires;
  r.pass = pass_no;
  r.wire_map = map;
  r.note = "dropped " + std::to_string(n - live) + " untouched wire(s)";
  out.push_back(std::move(r));
  wire_map = std::move(map);
  cur = std::move(next);
}

}  // namespace

const char* rewrite_kind_name(Rewrite::Kind k) {
  switch (k) {
    case Rewrite::Kind::DeadGate:
      return "dead_gate";
    case Rewrite::Kind::FoldPhase:
      return "fold_phase";
    case Rewrite::Kind::CancelPair:
      return "cancel_pair";
    case Rewrite::Kind::MergeRotation:
      return "merge_rotation";
    case Rewrite::Kind::CompactWires:
      return "compact_wires";
  }
  return "?";
}

OptResult optimize(const ir::Circuit& circuit, const OptOptions& options) {
  trace::Span span("qdt.flow.opt.run");
  g_runs.add();
  OptResult res;
  res.gates_before = circuit.stats().total_gates;
  res.ops_before = circuit.size();
  res.wires_before = circuit.num_qubits();

  ir::Circuit cur = circuit;
  double phase_acc = 0.0;
  std::uint32_t pass_no = 0;
  for (std::size_t round = 0; round < options.max_passes; ++round) {
    const bool changed_a =
        run_state_pass(cur, pass_no++, options, res.rewrites, phase_acc);
    const bool changed_b =
        run_commute_pass(cur, pass_no++, options, res.rewrites, phase_acc);
    if (!changed_a && !changed_b) {
      break;
    }
  }
  res.wire_map.resize(cur.num_qubits());
  std::iota(res.wire_map.begin(), res.wire_map.end(), Qubit{0});
  if (options.compact_wires) {
    run_compaction(cur, pass_no++, res.rewrites, res.wire_map);
  }

  res.global_phase_radians =
      phase_is_zero(phase_acc) ? 0.0
                               : std::remainder(phase_acc, 2.0 * std::acos(-1.0));
  res.global_phase = Phase::from_radians(res.global_phase_radians);
  res.circuit = std::move(cur);
  res.gates_after = res.circuit.stats().total_gates;
  res.ops_after = res.circuit.size();
  res.wires_after = res.circuit.num_qubits();

  if (options.certify) {
    cert::check_rewrites(circuit, res.rewrites, res.circuit,
                         res.global_phase_radians);
    res.certified = true;
  }

  if (res.gates_before > res.gates_after) {
    g_removed.add(res.gates_before - res.gates_after);
  }
  if (res.wires_before > res.wires_after) {
    g_compacted.add(res.wires_before - res.wires_after);
  }
  for (const Rewrite& r : res.rewrites) {
    if (r.kind == Rewrite::Kind::FoldPhase) {
      g_folded.add();
    } else if (r.kind == Rewrite::Kind::MergeRotation) {
      g_merged.add();
    }
  }
  span.attr("gates_before", static_cast<std::int64_t>(res.gates_before))
      .attr("gates_after", static_cast<std::int64_t>(res.gates_after))
      .attr("rewrites", static_cast<std::int64_t>(res.rewrites.size()));
  return res;
}

}  // namespace qdt::flow
