#include "flow/cert.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "flow/domain.hpp"
#include "flow/unitary.hpp"
#include "guard/error.hpp"
#include "ir/gate.hpp"
#include "obs/obs.hpp"

namespace qdt::flow::cert {

namespace {

using ir::GateKind;
using ir::Operation;
using ir::Qubit;

obs::Counter& g_checked = obs::counter("qdt.flow.cert.checked");
obs::Counter& g_rejected = obs::counter("qdt.flow.cert.rejected");

/// Checker tolerance for matrix products and phase sums: deliberately
/// looser than the optimizer's 1e-9 so a certificate is only rejected for
/// real violations, never rounding.
constexpr double kTol = 1e-6;

/// Tolerance for state-identity claims. Tighter than kTol: every legal
/// claim is exact up to machine rounding (~1e-15), while an unsound
/// near-identity removal — a rotation by epsilon deviates by O(epsilon)
/// entrywise — must be rejected below the 1e-7 the fuzz oracles observe.
constexpr double kStateTol = 1e-8;

[[noreturn]] void fail(const std::string& what) {
  g_rejected.add();
  throw Error::internal("flow: certificate rejected: " + what);
}

bool phase_is_zero(double r) {
  return std::abs(Complex{std::cos(r) - 1.0, std::sin(r)}) < kTol;
}

/// Concrete per-qubit state: exact amplitudes, or nullopt once the qubit
/// is possibly entangled / unknown. Strictly more precise than the
/// abstract lattice, so every lattice fact must be confirmable here.
using QubitVec = std::optional<std::array<Complex, 2>>;

bool is_zero_vec(const std::array<Complex, 2>& v) {
  return std::abs(v[1]) < kTol;
}

bool is_one_vec(const std::array<Complex, 2>& v) {
  return std::abs(v[0]) < kTol;
}

/// Concrete mirror of the abstract transfer, over exact amplitudes.
void concrete_transfer(const Operation& op, std::vector<QubitVec>& vecs) {
  if (op.is_barrier()) {
    return;
  }
  if (op.is_reset()) {
    for (const Qubit q : op.targets()) {
      vecs[q] = std::array<Complex, 2>{Complex{1.0, 0.0}, Complex{0.0, 0.0}};
    }
    return;
  }
  if (op.is_measurement()) {
    for (const Qubit q : op.targets()) {
      if (vecs[q].has_value() && is_zero_vec(*vecs[q])) {
        vecs[q] = std::array<Complex, 2>{Complex{1.0, 0.0}, Complex{0.0, 0.0}};
      } else if (vecs[q].has_value() && is_one_vec(*vecs[q])) {
        vecs[q] = std::array<Complex, 2>{Complex{0.0, 0.0}, Complex{1.0, 0.0}};
      } else {
        vecs[q] = std::nullopt;
      }
    }
    return;
  }
  if (op.kind() == GateKind::I && op.controls().empty()) {
    return;
  }
  for (const Qubit c : op.controls()) {
    if (vecs[c].has_value() && is_zero_vec(*vecs[c])) {
      return;  // the gate never fires
    }
  }
  const std::vector<Qubit> qs = op.qubits();
  const bool all_known = std::all_of(qs.begin(), qs.end(), [&](Qubit q) {
    return vecs[q].has_value();
  });
  if (all_known && qs.size() <= kDenseCap) {
    const std::size_t k = qs.size();
    const std::size_t dim = std::size_t{1} << k;
    std::vector<Complex> in(dim, Complex{0.0, 0.0});
    for (std::size_t j = 0; j < dim; ++j) {
      Complex amp{1.0, 0.0};
      for (std::size_t i = 0; i < k; ++i) {
        amp *= (*vecs[qs[i]])[(j >> i) & 1U];
      }
      in[j] = amp;
    }
    const std::vector<Complex> u = op_unitary(op);
    std::vector<Complex> out(dim, Complex{0.0, 0.0});
    for (std::size_t r = 0; r < dim; ++r) {
      for (std::size_t c = 0; c < dim; ++c) {
        out[r] += u[r * dim + c] * in[c];
      }
    }
    Complex inner{0.0, 0.0};
    for (std::size_t j = 0; j < dim; ++j) {
      inner += std::conj(in[j]) * out[j];
    }
    if (std::abs(std::abs(inner) - 1.0) < 1e-9) {
      // Entrywise confirmation — fidelity is quadratically blind to the
      // O(eps) drift of a near-identity gate, and "nothing moves" here
      // would let later claims be confirmed against stale amplitudes.
      const Complex phase = inner / std::abs(inner);
      bool entrywise = true;
      for (std::size_t j = 0; j < dim; ++j) {
        if (std::abs(out[j] - phase * in[j]) >= 1e-9) {
          entrywise = false;
          break;
        }
      }
      if (entrywise) {
        return;  // identity up to phase: nothing moves
      }
    }
    const auto factors = factor_product(out, k);
    if (!factors.has_value()) {
      for (const Qubit q : qs) {
        vecs[q] = std::nullopt;
      }
      return;
    }
    for (std::size_t i = 0; i < k; ++i) {
      vecs[qs[i]] = (*factors)[i];
    }
    return;
  }
  if (op.is_diagonal()) {
    const bool targets_basis =
        std::all_of(op.targets().begin(), op.targets().end(), [&](Qubit q) {
          return vecs[q].has_value() &&
                 (is_zero_vec(*vecs[q]) || is_one_vec(*vecs[q]));
        });
    if (targets_basis) {
      // Basis targets pass through a diagonal gate untouched; superposed
      // controls may pick up correlated phases.
      for (const Qubit c : op.controls()) {
        if (!vecs[c].has_value() ||
            !(is_zero_vec(*vecs[c]) || is_one_vec(*vecs[c]))) {
          vecs[c] = std::nullopt;
        }
      }
      return;
    }
  }
  for (const Qubit q : qs) {
    vecs[q] = std::nullopt;
  }
}

/// Re-derive a DeadGate/FoldPhase claim from the fact states alone: the
/// operation must act as e^{i phase} * identity on every product vector
/// whose known qubits sit in their claimed states and whose unknown
/// qubits range over the computational basis (linearity extends that to
/// the whole reachable subspace, entanglement with the environment
/// included).
bool removal_justified(const Operation& op,
                       const std::vector<StateValue>& facts, double phase) {
  if (!op.is_unitary()) {
    return false;
  }
  const std::vector<Qubit> qs = op.qubits();
  if (facts.size() != qs.size() || qs.size() > kDenseCap) {
    return false;
  }
  const std::vector<Complex> u = op_unitary(op);
  const std::size_t k = qs.size();
  const std::size_t dim = std::size_t{1} << k;
  std::vector<std::size_t> unknown;
  for (std::size_t i = 0; i < k; ++i) {
    if (!is_known(facts[i])) {
      unknown.push_back(i);
    }
  }
  const Complex want{std::cos(phase), std::sin(phase)};
  for (std::size_t asn = 0; asn < (std::size_t{1} << unknown.size()); ++asn) {
    std::vector<Complex> v(dim, Complex{0.0, 0.0});
    for (std::size_t j = 0; j < dim; ++j) {
      Complex amp{1.0, 0.0};
      bool live = true;
      for (std::size_t i = 0; i < k && live; ++i) {
        const std::size_t bit = (j >> i) & 1U;
        if (is_known(facts[i])) {
          amp *= state_vector(facts[i])[bit];
        } else {
          const std::size_t u_pos = static_cast<std::size_t>(
              std::find(unknown.begin(), unknown.end(), i) - unknown.begin());
          live = bit == ((asn >> u_pos) & 1U);
        }
      }
      v[j] = live ? amp : Complex{0.0, 0.0};
    }
    for (std::size_t r = 0; r < dim; ++r) {
      Complex acc{0.0, 0.0};
      for (std::size_t c = 0; c < dim; ++c) {
        acc += u[r * dim + c] * v[c];
      }
      if (std::abs(acc - want * v[r]) > kStateTol) {
        return false;
      }
    }
  }
  return true;
}

/// Verify U_b * U_a == e^{i phase} * target (identity when null).
bool product_matches(const Operation& a, const Operation& b,
                     const Operation* merged, double phase) {
  if (a.num_qubits() > kDenseCap || b.qubits() != a.qubits()) {
    return false;
  }
  if (merged != nullptr && merged->qubits() != a.qubits()) {
    return false;
  }
  const std::vector<Complex> ua = op_unitary(a);
  const std::vector<Complex> ub = op_unitary(b);
  const std::size_t dim = std::size_t{1} << a.num_qubits();
  std::vector<Complex> target;
  if (merged != nullptr) {
    target = op_unitary(*merged);
  } else {
    target.assign(dim * dim, Complex{0.0, 0.0});
    for (std::size_t d = 0; d < dim; ++d) {
      target[d * dim + d] = Complex{1.0, 0.0};
    }
  }
  const Complex scale{std::cos(phase), std::sin(phase)};
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      Complex acc{0.0, 0.0};
      for (std::size_t t = 0; t < dim; ++t) {
        acc += ub[r * dim + t] * ua[t * dim + c];
      }
      if (std::abs(acc - scale * target[r * dim + c]) > kTol) {
        return false;
      }
    }
  }
  return true;
}

/// Every op strictly between i and j sharing a wire with `a` must be a
/// unitary that provably commutes with `a`; barriers block the span.
void check_commute_path(const ir::Circuit& cur, std::size_t i, std::size_t j,
                        const Operation& a) {
  const auto aq = a.qubits();
  for (std::size_t m = i + 1; m < j; ++m) {
    const Operation& mid = cur[m];
    if (mid.is_barrier()) {
      fail("barrier inside a commutation path");
    }
    const auto mq = mid.qubits();
    const bool shares = std::any_of(aq.begin(), aq.end(), [&](Qubit q) {
      return std::find(mq.begin(), mq.end(), q) != mq.end();
    });
    if (!shares) {
      continue;
    }
    if (!mid.is_unitary()) {
      fail("non-unitary op inside a commutation path");
    }
    if (!ops_commute(a, mid)) {
      fail("non-commuting op inside a commutation path: " + mid.str());
    }
  }
}

void replay_state_group(ir::Circuit& cur,
                        const std::vector<const Rewrite*>& group,
                        double& phase_acc) {
  std::vector<const Rewrite*> removal(cur.size(), nullptr);
  for (const Rewrite* r : group) {
    if (r->op >= cur.size() || removal[r->op] != nullptr) {
      fail("dataflow rewrite index out of range or duplicated");
    }
    removal[r->op] = r;
  }
  std::vector<QubitVec> vecs(
      cur.num_qubits(),
      std::array<Complex, 2>{Complex{1.0, 0.0}, Complex{0.0, 0.0}});
  ir::Circuit next(cur.num_qubits(), cur.name());
  for (std::size_t i = 0; i < cur.size(); ++i) {
    const Operation& op = cur[i];
    const Rewrite* r = removal[i];
    if (r == nullptr) {
      concrete_transfer(op, vecs);
      next.append(op);
      continue;
    }
    const std::vector<Qubit> qs = op.qubits();
    if (r->fact_states.size() != qs.size()) {
      fail("fact-state arity mismatch for " + op.str());
    }
    for (std::size_t t = 0; t < qs.size(); ++t) {
      const StateValue claim = r->fact_states[t];
      if (claim == StateValue::Bottom) {
        fail("bottom fact claimed for " + op.str());
      }
      if (!is_known(claim)) {
        continue;  // Top claims nothing
      }
      const QubitVec& v = vecs[qs[t]];
      if (!v.has_value()) {
        fail("claimed state not concretely known for " + op.str());
      }
      const auto ref = state_vector(claim);
      const Complex inner =
          std::conj(ref[0]) * (*v)[0] + std::conj(ref[1]) * (*v)[1];
      const Complex phase =
          std::abs(inner) > 0.0 ? inner / std::abs(inner) : Complex{1.0, 0.0};
      // Entrywise, not fidelity: a concrete state drifted O(eps) off the
      // claimed one still has fidelity 1 - O(eps^2).
      if (std::abs((*v)[0] - phase * ref[0]) > kStateTol ||
          std::abs((*v)[1] - phase * ref[1]) > kStateTol) {
        fail("claimed state contradicts the concrete state for " + op.str());
      }
    }
    const double phase =
        r->kind == Rewrite::Kind::DeadGate ? 0.0 : r->phase_radians;
    if (r->kind == Rewrite::Kind::DeadGate &&
        !phase_is_zero(r->phase_radians)) {
      fail("dead-gate rewrite carries a phase");
    }
    if (!removal_justified(op, r->fact_states, phase)) {
      fail("identity claim not derivable from the facts for " + op.str());
    }
    phase_acc += phase;
  }
  cur = std::move(next);
}

void replay_commute_group(ir::Circuit& cur,
                          const std::vector<const Rewrite*>& group,
                          double& phase_acc) {
  std::vector<char> deleted(cur.size(), 0);
  std::vector<const Operation*> replacement(cur.size(), nullptr);
  for (const Rewrite* r : group) {
    if (r->op >= cur.size() || r->partner >= cur.size() ||
        r->partner <= r->op) {
      fail("commutation rewrite indices out of range");
    }
    if (deleted[r->op] != 0 || deleted[r->partner] != 0 ||
        replacement[r->op] != nullptr || replacement[r->partner] != nullptr) {
      fail("commutation rewrites collide on an operation");
    }
    const Operation& a = cur[r->op];
    const Operation& b = cur[r->partner];
    if (!a.is_unitary() || !b.is_unitary()) {
      fail("commutation rewrite on a non-unitary op");
    }
    check_commute_path(cur, r->op, r->partner, a);
    if (r->kind == Rewrite::Kind::CancelPair) {
      if (b != a.adjoint()) {
        fail("cancel pair is not an adjoint pair: " + a.str());
      }
      if (!product_matches(a, b, nullptr, r->phase_radians)) {
        fail("cancel pair product is not the claimed phased identity");
      }
      deleted[r->op] = deleted[r->partner] = 1;
    } else if (r->kind == Rewrite::Kind::MergeRotation) {
      if (b.kind() != a.kind() || b.targets() != a.targets() ||
          b.controls() != a.controls()) {
        fail("merge partners disagree on kind or wires");
      }
      const Operation& m = r->merged;
      if (m.kind() != a.kind() || m.targets() != a.targets() ||
          m.controls() != a.controls() || m.params().size() != 1 ||
          a.params().size() != 1 || b.params().size() != 1 ||
          !(m.params()[0] == a.params()[0] + b.params()[0])) {
        fail("merged rotation is not the exact parameter sum");
      }
      if (!product_matches(a, b, &m, r->phase_radians)) {
        fail("merged rotation matrix mismatch");
      }
      deleted[r->partner] = 1;
      replacement[r->op] = &m;
    } else {
      fail("unexpected rewrite kind in a commutation group");
    }
    phase_acc += r->phase_radians;
  }
  ir::Circuit next(cur.num_qubits(), cur.name());
  for (std::size_t i = 0; i < cur.size(); ++i) {
    if (deleted[i] != 0) {
      continue;
    }
    next.append(replacement[i] != nullptr ? *replacement[i] : cur[i]);
  }
  cur = std::move(next);
}

void replay_compaction(ir::Circuit& cur, const Rewrite& r) {
  const std::size_t n = cur.num_qubits();
  if (r.wire_map.size() != n) {
    fail("compaction wire map has the wrong width");
  }
  std::vector<char> used(n, 0);
  for (const Operation& op : cur.ops()) {
    if (op.is_barrier()) {
      continue;
    }
    for (const Qubit q : op.qubits()) {
      used[q] = 1;
    }
  }
  std::vector<Qubit> images;
  for (std::size_t q = 0; q < n; ++q) {
    if (r.wire_map[q] == kInvalidWire) {
      if (used[q] != 0) {
        fail("compaction drops a wire that still carries operations");
      }
      continue;
    }
    images.push_back(r.wire_map[q]);
  }
  std::vector<Qubit> sorted = images;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t v = 0; v < sorted.size(); ++v) {
    if (sorted[v] != static_cast<Qubit>(v)) {
      fail("compaction wire map is not a bijection onto [0, live)");
    }
  }
  ir::Circuit next(std::max<std::size_t>(images.size(), 1), cur.name());
  for (const Operation& op : cur.ops()) {
    if (op.is_barrier()) {
      next.barrier();
      continue;
    }
    std::vector<Qubit> targets;
    std::vector<Qubit> controls;
    for (const Qubit q : op.targets()) {
      if (r.wire_map[q] == kInvalidWire) {
        fail("compaction remaps through a dropped wire");
      }
      targets.push_back(r.wire_map[q]);
    }
    for (const Qubit q : op.controls()) {
      if (r.wire_map[q] == kInvalidWire) {
        fail("compaction remaps through a dropped wire");
      }
      controls.push_back(r.wire_map[q]);
    }
    next.append(Operation(op.kind(), std::move(targets), std::move(controls),
                          op.params()));
  }
  cur = std::move(next);
}

}  // namespace

void check_rewrites(const ir::Circuit& original,
                    const std::vector<Rewrite>& rewrites,
                    const ir::Circuit& optimized,
                    double expected_phase_radians) {
  ir::Circuit cur = original;
  double phase_acc = 0.0;
  std::size_t i = 0;
  while (i < rewrites.size()) {
    if (i > 0 && rewrites[i].pass < rewrites[i - 1].pass) {
      fail("rewrite passes out of order");
    }
    std::vector<const Rewrite*> group;
    const std::uint32_t pass = rewrites[i].pass;
    while (i < rewrites.size() && rewrites[i].pass == pass) {
      group.push_back(&rewrites[i]);
      ++i;
    }
    const Rewrite::Kind k0 = group.front()->kind;
    const bool state_group = k0 == Rewrite::Kind::DeadGate ||
                             k0 == Rewrite::Kind::FoldPhase;
    const bool commute_group = k0 == Rewrite::Kind::CancelPair ||
                               k0 == Rewrite::Kind::MergeRotation;
    for (const Rewrite* r : group) {
      const bool rs = r->kind == Rewrite::Kind::DeadGate ||
                      r->kind == Rewrite::Kind::FoldPhase;
      const bool rc = r->kind == Rewrite::Kind::CancelPair ||
                      r->kind == Rewrite::Kind::MergeRotation;
      if (rs != state_group || rc != commute_group) {
        fail("mixed rewrite kinds in one pass");
      }
    }
    if (state_group) {
      replay_state_group(cur, group, phase_acc);
    } else if (commute_group) {
      replay_commute_group(cur, group, phase_acc);
    } else {
      if (group.size() != 1) {
        fail("compaction must be the sole rewrite of its pass");
      }
      replay_compaction(cur, *group.front());
    }
  }
  if (!(cur == optimized)) {
    fail("replayed circuit differs from the emitted circuit");
  }
  if (!phase_is_zero(phase_acc - expected_phase_radians)) {
    fail("global phase does not match the rewrite list");
  }
  g_checked.add(rewrites.size());
}

}  // namespace qdt::flow::cert
