#include "guard/error.hpp"

namespace qdt {

const char* code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::BadInput:
      return "bad-input";
    case ErrorCode::Unsupported:
      return "unsupported";
    case ErrorCode::ResourceExhausted:
      return "resource-exhausted";
    case ErrorCode::Internal:
      return "internal";
  }
  return "?";
}

const char* resource_name(Resource resource) {
  switch (resource) {
    case Resource::None:
      return "none";
    case Resource::Memory:
      return "memory";
    case Resource::DdNodes:
      return "dd_nodes";
    case Resource::TnElements:
      return "tn_elements";
    case Resource::MpsBond:
      return "mps_bond";
    case Resource::Deadline:
      return "deadline";
  }
  return "?";
}

}  // namespace qdt
