#include "guard/budget.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

#include "obs/obs.hpp"

namespace qdt::guard {

namespace {

obs::Counter& g_checks = obs::counter("qdt.guard.budget.checks");
obs::Counter& g_faults = obs::counter("qdt.guard.fault.injected");
obs::Counter& g_ex_memory = obs::counter("qdt.guard.exhausted.memory");
obs::Counter& g_ex_dd_nodes = obs::counter("qdt.guard.exhausted.dd_nodes");
obs::Counter& g_ex_tn = obs::counter("qdt.guard.exhausted.tn_elements");
obs::Counter& g_ex_mps = obs::counter("qdt.guard.exhausted.mps_bond");
obs::Counter& g_ex_deadline = obs::counter("qdt.guard.exhausted.deadline");
obs::Counter& g_pressure = obs::counter("qdt.guard.pressure.events");

obs::Counter& exhausted_counter(Resource r) {
  switch (r) {
    case Resource::Memory:
      return g_ex_memory;
    case Resource::DdNodes:
      return g_ex_dd_nodes;
    case Resource::TnElements:
      return g_ex_tn;
    case Resource::MpsBond:
      return g_ex_mps;
    default:
      return g_ex_deadline;
  }
}

// Resource enum values usable as fault-slot indices (skip None).
constexpr std::size_t kNumResources = 6;

std::size_t slot(Resource r) { return static_cast<std::size_t>(r); }

struct ThreadState {
  const BudgetScope* top = nullptr;
  PressureWatch* watch_top = nullptr;
  // Fault injection: 0 = disarmed, otherwise throw when the countdown for
  // that resource reaches zero.
  std::uint64_t fault_countdown[kNumResources] = {};
  std::uint64_t fired = 0;
  bool env_parsed = false;
};

ThreadState& state() {
  thread_local ThreadState s;
  return s;
}

Resource resource_from_token(const std::string& token) {
  if (token == "memory") {
    return Resource::Memory;
  }
  if (token == "dd_nodes") {
    return Resource::DdNodes;
  }
  if (token == "tn_elements") {
    return Resource::TnElements;
  }
  if (token == "mps_bond") {
    return Resource::MpsBond;
  }
  if (token == "deadline") {
    return Resource::Deadline;
  }
  return Resource::None;
}

/// Parse QDT_FAULT="resource:n[,resource:n...]" once per thread. Malformed
/// entries are ignored — fault injection is a test hook, never a reason to
/// fail a real run.
void parse_env_faults(ThreadState& s) {
  s.env_parsed = true;
  const char* env = std::getenv("QDT_FAULT");
  if (env == nullptr) {
    return;
  }
  std::string spec(env);
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string entry =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      continue;
    }
    const Resource r = resource_from_token(entry.substr(0, colon));
    if (r == Resource::None) {
      continue;
    }
    const std::uint64_t nth =
        std::strtoull(entry.c_str() + colon + 1, nullptr, 10);
    if (nth > 0) {
      s.fault_countdown[slot(r)] = nth;
    }
  }
}

/// Checkpoint preamble: count the check, fire an armed fault when its
/// countdown hits zero. Returns the active limits (nullptr when none).
const Limits* checkpoint(Resource r) {
  ThreadState& s = state();
  if (!s.env_parsed) {
    parse_env_faults(s);
  }
  g_checks.add();
  std::uint64_t& countdown = s.fault_countdown[slot(r)];
  if (countdown > 0 && --countdown == 0) {
    ++s.fired;
    g_faults.add();
    exhausted_counter(r).add();
    throw Error::exhausted(
        r, std::string("fault injection: forced ") + resource_name(r) +
               " exhaustion (QDT_FAULT)");
  }
  return s.top != nullptr ? &s.top->limits() : nullptr;
}

[[noreturn]] void throw_exhausted(Resource r, const std::string& message) {
  exhausted_counter(r).add();
  throw Error::exhausted(r, message);
}

/// min over "0 means unlimited" values.
std::size_t tighten(std::size_t parent, std::size_t own) {
  if (parent == 0) {
    return own;
  }
  if (own == 0) {
    return parent;
  }
  return std::min(parent, own);
}

}  // namespace

BudgetScope::BudgetScope(const Budget& budget) : prev_(state().top) {
  const Limits* parent = prev_ != nullptr ? &prev_->limits() : nullptr;
  limits_.max_memory_bytes =
      tighten(parent != nullptr ? parent->max_memory_bytes : 0,
              budget.max_memory_bytes);
  limits_.max_dd_nodes = tighten(
      parent != nullptr ? parent->max_dd_nodes : 0, budget.max_dd_nodes);
  limits_.max_tn_elements =
      tighten(parent != nullptr ? parent->max_tn_elements : 0,
              budget.max_tn_elements);
  limits_.max_mps_bond = tighten(
      parent != nullptr ? parent->max_mps_bond : 0, budget.max_mps_bond);
  // A deadline only ever moves earlier across nested scopes.
  const double own_at = budget.deadline_seconds > 0.0
                            ? obs::monotonic_seconds() + budget.deadline_seconds
                            : 0.0;
  const double parent_at = parent != nullptr ? parent->deadline_at : 0.0;
  if (own_at == 0.0) {
    limits_.deadline_at = parent_at;
  } else if (parent_at == 0.0) {
    limits_.deadline_at = own_at;
  } else {
    limits_.deadline_at = std::min(own_at, parent_at);
  }
  state().top = this;
}

BudgetScope::BudgetScope(const Limits& resolved) : prev_(state().top) {
  const Limits* parent = prev_ != nullptr ? &prev_->limits() : nullptr;
  limits_.max_memory_bytes =
      tighten(parent != nullptr ? parent->max_memory_bytes : 0,
              resolved.max_memory_bytes);
  limits_.max_dd_nodes = tighten(
      parent != nullptr ? parent->max_dd_nodes : 0, resolved.max_dd_nodes);
  limits_.max_tn_elements =
      tighten(parent != nullptr ? parent->max_tn_elements : 0,
              resolved.max_tn_elements);
  limits_.max_mps_bond = tighten(
      parent != nullptr ? parent->max_mps_bond : 0, resolved.max_mps_bond);
  // Both deadlines are already absolute; the earlier one wins.
  const double parent_at = parent != nullptr ? parent->deadline_at : 0.0;
  if (resolved.deadline_at == 0.0) {
    limits_.deadline_at = parent_at;
  } else if (parent_at == 0.0) {
    limits_.deadline_at = resolved.deadline_at;
  } else {
    limits_.deadline_at = std::min(resolved.deadline_at, parent_at);
  }
  state().top = this;
}

BudgetScope::~BudgetScope() { state().top = prev_; }

bool active() { return state().top != nullptr; }

const Limits* current_limits() {
  const BudgetScope* top = state().top;
  return top != nullptr ? &top->limits() : nullptr;
}

void check_deadline() {
  const Limits* limits = checkpoint(Resource::Deadline);
  if (limits == nullptr || limits->deadline_at == 0.0) {
    return;
  }
  const double now = obs::monotonic_seconds();
  if (now > limits->deadline_at) {
    throw_exhausted(Resource::Deadline,
                    "deadline exceeded (wall clock ran " +
                        std::to_string(now - limits->deadline_at) +
                        "s past the budget)");
  }
}

void check_memory(std::size_t bytes, const char* what) {
  const Limits* limits = checkpoint(Resource::Memory);
  if (limits == nullptr || limits->max_memory_bytes == 0 ||
      bytes <= limits->max_memory_bytes) {
    return;
  }
  throw_exhausted(Resource::Memory,
                  std::string(what) + ": " + std::to_string(bytes) +
                      " bytes exceed the " +
                      std::to_string(limits->max_memory_bytes) +
                      "-byte budget");
}

void check_dd_nodes(std::size_t nodes) {
  const Limits* limits = checkpoint(Resource::DdNodes);
  if (limits == nullptr || limits->max_dd_nodes == 0 ||
      nodes <= limits->max_dd_nodes) {
    return;
  }
  throw_exhausted(Resource::DdNodes,
                  "decision-diagram package grew to " +
                      std::to_string(nodes) + " nodes (budget " +
                      std::to_string(limits->max_dd_nodes) + ")");
}

void check_tn_elements(std::size_t elements) {
  const Limits* limits = checkpoint(Resource::TnElements);
  if (limits == nullptr || limits->max_tn_elements == 0 ||
      elements <= limits->max_tn_elements) {
    return;
  }
  throw_exhausted(Resource::TnElements,
                  "tensor-network intermediate of " +
                      std::to_string(elements) + " elements (budget " +
                      std::to_string(limits->max_tn_elements) + ")");
}

void check_mps_bond(std::size_t bond) {
  const Limits* limits = checkpoint(Resource::MpsBond);
  if (limits == nullptr || limits->max_mps_bond == 0 ||
      bond <= limits->max_mps_bond) {
    return;
  }
  throw_exhausted(Resource::MpsBond,
                  "MPS bond dimension " + std::to_string(bond) +
                      " exceeds the budget of " +
                      std::to_string(limits->max_mps_bond));
}

bool pressure(Resource r, std::size_t used) {
  // Deliberately not a checkpoint(): pressure reports never consume fault
  // countdowns or throw — they only warn, so a backend can collect at its
  // next safe point before the hard check_*() ceiling trips.
  const Limits* limits = current_limits();
  if (limits == nullptr) {
    return false;
  }
  std::size_t limit = 0;
  switch (r) {
    case Resource::DdNodes:
      limit = limits->max_dd_nodes;
      break;
    case Resource::Memory:
      limit = limits->max_memory_bytes;
      break;
    default:
      break;
  }
  // Warning line at 7/8 of the ceiling (multiply-through form avoids
  // division and is exact for the sizes involved).
  if (limit == 0 || used * 8 < limit * 7) {
    return false;
  }
  g_pressure.add();
  for (PressureWatch* w = state().watch_top; w != nullptr; w = w->prev_) {
    if (w->cb_) {
      w->cb_(r, used, limit);
    }
  }
  return true;
}

PressureWatch::PressureWatch(Callback cb)
    : cb_(std::move(cb)), prev_(state().watch_top) {
  state().watch_top = this;
}

PressureWatch::~PressureWatch() { state().watch_top = prev_; }

void inject_fault(Resource resource, std::uint64_t nth) {
  ThreadState& s = state();
  s.env_parsed = true;  // explicit arming overrides the env hook
  if (resource != Resource::None && nth > 0) {
    s.fault_countdown[static_cast<std::size_t>(resource)] = nth;
  }
}

void clear_faults() {
  ThreadState& s = state();
  for (auto& c : s.fault_countdown) {
    c = 0;
  }
  s.fired = 0;
  s.env_parsed = true;
}

std::uint64_t faults_fired() { return state().fired; }

std::size_t faults_armed() {
  const ThreadState& s = state();
  std::size_t armed = 0;
  for (const auto& c : s.fault_countdown) {
    armed += c > 0 ? 1 : 0;
  }
  return armed;
}

}  // namespace qdt::guard
