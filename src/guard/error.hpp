// qdt::Error — the structured error taxonomy shared by every public API
// boundary of the library. The paper's four data structures fail in four
// different ways (arrays hit the memory wall, decision diagrams blow up in
// nodes, tensor networks in intermediate size, ZX rewriting stalls); a
// caller that wants to degrade gracefully needs to tell *why* a task died,
// not just parse a what() string. Every throw carries an ErrorCode and,
// for ResourceExhausted, the Resource that ran out — which is exactly the
// signal core::simulate_robust() / verify_robust() use to pick the next
// rung of the fallback ladder.
//
// Error derives from std::runtime_error so pre-existing generic handlers
// (and tests catching std::runtime_error) keep working unchanged.
#pragma once

#include <stdexcept>
#include <string>

namespace qdt {

enum class ErrorCode {
  /// The caller handed us something malformed (bad QASM, out-of-range
  /// qubit, inconsistent dimensions).
  BadInput,
  /// The request is well-formed but this backend/method cannot express it
  /// (noise on the tensor-network backend, dense state from a tableau).
  Unsupported,
  /// A cooperative resource budget was hit (see Resource).
  ResourceExhausted,
  /// Invariant violation inside the library — always a bug.
  Internal,
};

/// Which budgeted resource ran out (meaningful only with ResourceExhausted).
enum class Resource {
  None,
  Memory,      // byte ceiling (arrays, any backend's footprint estimate)
  DdNodes,     // decision-diagram node cap
  TnElements,  // tensor-network max-intermediate-elements cap
  MpsBond,     // MPS bond-dimension cap
  Deadline,    // wall-clock deadline
};

const char* code_name(ErrorCode code);
const char* resource_name(Resource resource);

class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message,
        Resource resource = Resource::None)
      : std::runtime_error(message), code_(code), resource_(resource) {}

  ErrorCode code() const noexcept { return code_; }
  Resource resource() const noexcept { return resource_; }
  const char* code_name() const noexcept { return qdt::code_name(code_); }

  static Error bad_input(const std::string& message) {
    return {ErrorCode::BadInput, message};
  }
  static Error unsupported(const std::string& message) {
    return {ErrorCode::Unsupported, message};
  }
  static Error exhausted(Resource resource, const std::string& message) {
    return {ErrorCode::ResourceExhausted, message, resource};
  }
  static Error internal(const std::string& message) {
    return {ErrorCode::Internal, message};
  }

 private:
  ErrorCode code_;
  Resource resource_;
};

}  // namespace qdt
