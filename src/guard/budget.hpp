// qdt::guard — cooperative resource budgets for the four backends.
//
// A Budget names hard ceilings (wall-clock deadline, bytes, DD nodes,
// TN intermediate elements, MPS bond dimension); a BudgetScope installs it
// for the current thread, and the backends' hot loops call the cheap
// check_*() functions at natural cadence points (per gate apply, per DD
// node allocation, per tensor contraction, per ZX rewrite round, per MPS
// SVD). When a ceiling is exceeded the checkpoint throws
// qdt::Error(ResourceExhausted, <resource>) — so a runaway simulate()
// unwinds cleanly instead of taking the process down, and
// core::simulate_robust() can catch it and degrade to the next backend.
//
// Scopes nest and only ever *tighten*: a nested scope's effective limit for
// each resource is the minimum of its own and the enclosing scope's, and a
// deadline never moves later. With no scope installed every check is a
// thread-local pointer load and a branch.
//
// Fault injection: guard::inject_fault(r, n) (or the QDT_FAULT environment
// variable, e.g. QDT_FAULT="dd_nodes:3,deadline:1") arms a one-shot fault
// that makes the n-th checkpoint of resource r throw as if the budget were
// exhausted. This makes every fallback edge testable deterministically,
// without multi-GB allocations or real timeouts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "guard/error.hpp"

namespace qdt::guard {

/// Resource ceilings. Zero always means "unlimited".
struct Budget {
  /// Wall-clock seconds from BudgetScope entry.
  double deadline_seconds = 0.0;
  /// Ceiling on a single backend's dominant allocation footprint.
  std::size_t max_memory_bytes = 0;
  /// Decision-diagram package node cap (vector + matrix nodes).
  std::size_t max_dd_nodes = 0;
  /// Largest tensor-network intermediate, in complex elements.
  std::size_t max_tn_elements = 0;
  /// Hard MPS bond-dimension cap (distinct from SimulateOptions::
  /// mps_max_bond, which *truncates*; this one refuses).
  std::size_t max_mps_bond = 0;

  bool unlimited() const {
    return deadline_seconds == 0.0 && max_memory_bytes == 0 &&
           max_dd_nodes == 0 && max_tn_elements == 0 && max_mps_bond == 0;
  }
};

/// Effective, deadline-resolved limits of the innermost scope (exposed for
/// introspection and for backends that derive degraded settings from the
/// active budget, e.g. a truncation bond that fits the byte ceiling).
struct Limits {
  double deadline_at = 0.0;  // monotonic seconds; 0 = none
  std::size_t max_memory_bytes = 0;
  std::size_t max_dd_nodes = 0;
  std::size_t max_tn_elements = 0;
  std::size_t max_mps_bond = 0;
};

/// RAII: installs `budget` as the current thread's active budget. Nested
/// scopes tighten; destruction restores the enclosing scope.
class BudgetScope {
 public:
  explicit BudgetScope(const Budget& budget);
  /// Install already-resolved limits (deadline_at is absolute). This is how
  /// qdt::par worker threads adopt the submitting thread's effective budget:
  /// limits are thread-local, so without re-installation a kernel chunk
  /// running on a pool thread would see no budget at all. Tightens against
  /// any scope already active on this thread.
  explicit BudgetScope(const Limits& resolved);
  ~BudgetScope();
  BudgetScope(const BudgetScope&) = delete;
  BudgetScope& operator=(const BudgetScope&) = delete;

  const Limits& limits() const { return limits_; }

 private:
  Limits limits_;
  const BudgetScope* prev_;
};

/// True when any scope is installed on this thread.
bool active();

/// Effective limits of the innermost scope; nullptr when none is active.
const Limits* current_limits();

// -- Cooperative checkpoints -------------------------------------------------
// Each consults the fault injector first, then the active budget, and
// throws qdt::Error(ResourceExhausted, <resource>) on violation. All are
// cheap no-ops when nothing is armed.

/// Throws Error(Deadline) once the wall-clock deadline has passed.
void check_deadline();
/// Throws Error(Memory) if `bytes` exceeds the byte ceiling. `what` names
/// the allocation in the error message ("statevector", "dd package", ...).
void check_memory(std::size_t bytes, const char* what);
/// Throws Error(DdNodes) if `nodes` exceeds the DD node cap.
void check_dd_nodes(std::size_t nodes);
/// Throws Error(TnElements) if `elements` exceeds the intermediate cap.
void check_tn_elements(std::size_t elements);
/// Throws Error(MpsBond) if `bond` exceeds the bond cap.
void check_mps_bond(std::size_t bond);

// -- Memory-pressure callbacks ------------------------------------------------
// check_* throws only once a ceiling is *exceeded* — too late for a backend
// that could shed internal garbage instead. pressure() is the early-warning
// half of the contract: backends report their current usage, and when it
// crosses 7/8 of the effective ceiling every registered PressureWatch on the
// thread is notified (and the call returns true) so the caller can schedule
// a collection at its next safe point — collect-then-continue instead of
// fail-then-fallback. With no budget installed (or no ceiling for that
// resource) this is a thread-local pointer load and a branch.

/// Report current usage of `r` (DdNodes -> live node count, Memory -> bytes).
/// Returns true when usage is within 1/8 of the effective ceiling; also
/// notifies every PressureWatch registered on this thread. Never throws.
bool pressure(Resource r, std::size_t used);

/// RAII: registers a callback invoked by pressure() on this thread whenever
/// a resource crosses the 7/8 warning line. Watches nest (all registered
/// watches fire, innermost first). Destruction must happen on the
/// registering thread, in reverse registration order.
class PressureWatch {
 public:
  using Callback =
      std::function<void(Resource r, std::size_t used, std::size_t limit)>;
  explicit PressureWatch(Callback cb);
  ~PressureWatch();
  PressureWatch(const PressureWatch&) = delete;
  PressureWatch& operator=(const PressureWatch&) = delete;

 private:
  friend bool pressure(Resource, std::size_t);
  Callback cb_;
  PressureWatch* prev_;
};

// -- Fault injection ---------------------------------------------------------

/// Arm a one-shot fault: the `nth` subsequent checkpoint of `resource` on
/// this thread throws ResourceExhausted (nth = 1 means the very next one).
void inject_fault(Resource resource, std::uint64_t nth);
/// Disarm all faults and reset checkpoint counters on this thread. Call
/// between independent runs (the fuzzer does, per case): an armed fault is
/// thread-global state, and a stale one from case k would otherwise fire
/// mid-way through case k+1.
void clear_faults();
/// Number of faults fired on this thread since the last clear_faults().
std::uint64_t faults_fired();
/// Number of resources with an armed, not-yet-fired fault on this thread
/// (stale-state introspection for chaos harnesses and tests).
std::size_t faults_armed();

}  // namespace qdt::guard
