// qdt — command-line front end for the library's three design tasks.
//
//   qdt stats    <file.qasm>
//   qdt lint     <file.qasm> [--json] [--state] [--noise P]
//   qdt simulate <file.qasm> [--backend array|dd|tn|mps|stab|auto]
//                [--shots N] [--seed S] [--noise P] [--state]
//     (`qdt run` is an alias for `qdt simulate`)
//   qdt explain  <file.qasm> [--json] [--shots N] [--seed S] [--noise P]
//                [--state]
//   qdt verify   <a.qasm> <b.qasm> [--method array|dd|dd-seq|dd-sim|zx]
//   qdt opt      <file.qasm> [--json] [--out <file.qasm>] [--no-compact]
//   qdt compile  <file.qasm> --target line|ring|grid|star|full|heavyhex
//                [--qubits N] [--gateset cx|cz] [--router sp|lookahead]
//                [--no-opt] [--out <file.qasm>] [--verify]
//   qdt fuzz     [--seed S] [--cases N] [--chaos] [--corpus DIR] [--clifford]
//                [--max-qubits N] [--max-ops N] [--no-shrink] [--no-parser]
//                [--plant tflip|cxdrop|phasedrift] [--replay file.qasm]
//                [--case-seed S] [--jobs N]
//   qdt serve    [--socket PATH] [--workers N] [--max-queue N]
//                [--max-tenant-queue N] [--timeout-ms N] [--max-timeout-ms N]
//                [--max-memory-mb N] [--admission-cost LOG2] [--cache N]
//                [--drain-timeout-ms N] [--no-fault-injection]
//
// `serve` runs the qdt::serve daemon: line-delimited JSON requests on
// stdin (responses on stdout) or, with --socket, on a unix socket serving
// multiple concurrent clients. Every request is admission-checked against
// the lint cost model, queued per tenant with fair-share scheduling, run
// under a per-request budget on the robust fallback ladder (plans cached
// by circuit hash), and answered with a typed response — including typed
// overload sheds carrying retry_after_ms. SIGINT/SIGTERM drain gracefully:
// admission stops, in-flight work finishes against its deadlines, queued
// jobs are cancelled with typed responses, then metrics/traces flush.
// Diagnostics go to stderr; stdout carries only protocol lines in stdio
// mode. Exit 0 after a clean drain, 2 on bad flags/socket.
//
// SIGINT/SIGTERM also interrupt `qdt fuzz` cooperatively: in-flight cases
// finish (findings still shrink + persist to the corpus), no new case
// starts, and the summary reports `interrupted after K/N cases`. The exit
// code keeps the normal contract — 0 when what ran was clean, 1 when any
// finding was recorded before the interrupt.
//
// `explain` runs the statically planned robust ladder (same path as
// `simulate --robust` without --backend) and prints a plan-vs-actual
// report: lint's ranked cost table and predicted ladder on one side, the
// rungs that actually executed on the other — each with its outcome, typed
// qdt::Error code and exhausted resource on degradation, per-rung wall
// time, and the backend's memory high-water mark. Exit 0 when a rung
// carried the run, 3 when every rung exhausted its resources.
//
// Every subcommand accepts --threads N: the qdt::par worker-pool cap for
// parallelized kernels (statevector gate strides, reductions, density-
// matrix superoperators, TN contractions, shot fan-out). The default is 1
// (or QDT_THREADS when set); results are bitwise identical at any thread
// count. `fuzz --jobs N` additionally fans whole fuzz cases out across N
// case-worker threads.
//
// `lint` runs the qdt::lint static-analysis pass — no simulation: Clifford
// fraction and T-count, dead/idle qubits, trivially cancelling or foldable
// gate pairs, per-qubit lightcones, the entanglement-cut bound on the MPS
// bond dimension, a greedy tensor-network contraction-cost estimate, a
// DD-size growth heuristic, and the ranked backend plan the robust ladder
// would use. --json emits the full structured report; --state/--noise
// declare what the eventual simulation will need so the plan ranks only
// backends that can serve it. Exit 0 when clean, 1 when warnings fired,
// 2 on bad input.
//
// `fuzz` drives the qdt::chaos differential fuzzer: generated circuits run
// through every applicable backend pair plus metamorphic equivalence
// checks; --chaos re-runs each case under randomized guard fault
// schedules; findings are shrunk to minimal repros and written to the
// corpus directory with JSON metadata and a one-command replay line.
// --clifford restricts generation to Clifford circuits, so the wide
// packed-vs-reference stabilizer differential carries the oracle duty at
// widths the dense backends cannot reach (pair with --max-qubits 256+).
// --replay runs the oracle on a single .qasm repro instead of generating.
// --case-seed re-runs one case from its stored per-case seed (the corpus
// "replay" command) — combine with the recorded --plant/--no-parser/
// --chaos/--max-* flags to reproduce the finding exactly.
//
// Every subcommand additionally accepts --metrics[=file.json]: after the
// run, the full qdt::obs registry snapshot (unique/compute-table hit
// rates, contraction FLOPs, rewrite-rule fire counts, task spans, ...) is
// printed as JSON to stdout, or written to the given file.
//
// Every subcommand also accepts --trace-out <file.json> and/or
// --trace-jsonl <file.jsonl>: after the run (even a failing one) the
// qdt::trace span ring is exported as Chrome trace-event JSON — load it in
// Perfetto (ui.perfetto.dev) or chrome://tracing — or as a line-delimited
// JSONL event log. Span capacity comes from QDT_OBS_SPAN_CAP.
//
// Resource budgets: --timeout-ms N caps wall-clock time, --max-memory-mb N
// caps the dominant data-structure footprint (cooperatively checked).
// simulate/verify accept --robust: on resource exhaustion the task degrades
// along the fallback ladder instead of failing, and the chain is printed.
//
// `opt` runs the qdt::flow certified static optimizer — abstract
// interpretation over a per-qubit constant-state lattice plus a
// commutation-DAG scan: dead-gate elimination on classically known wires,
// constant-folding of diagonal gates into a tracked global phase,
// long-range cancellation/merging of commuting pairs, and qubit-wire
// compaction. Every rewrite carries a machine-checkable justification that
// an independent certificate checker replays before anything is emitted;
// a rejected certificate is a hard internal error (exit 4), never a wrong
// circuit. --json emits the structured report, --out writes the optimized
// QASM, --no-compact keeps the original wire count.
//
// Exit code 0 on success (and on "equivalent"); 1 on "not equivalent";
// 2 on usage or bad input; 3 on resource exhaustion; 4 on internal errors.
#include <csignal>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/qdt.hpp"
#include "serve/serve.hpp"
#include "serve/transport.hpp"

namespace {

using namespace qdt;

[[noreturn]] void usage() {
  std::cerr <<
      R"(usage:
  qdt stats    <file.qasm>
  qdt lint     <file.qasm> [--json] [--state] [--noise P]
  qdt simulate <file.qasm> [--backend array|dd|tn|mps|stab|auto]
               [--shots N] [--seed S] [--noise P] [--state] [--robust]
               (`qdt run` is an alias for `qdt simulate`)
  qdt explain  <file.qasm> [--json] [--shots N] [--seed S] [--noise P]
               [--state]   (plan-vs-actual report for the robust ladder)
  qdt verify   <a.qasm> <b.qasm> [--method array|dd|dd-seq|dd-sim|zx]
               [--robust]
  qdt opt      <file.qasm> [--json] [--out <file.qasm>] [--no-compact]
               (certified static optimizer: every rewrite is re-verified
               by an independent certificate checker before emission)
  qdt compile  <file.qasm> --target line|ring|grid|star|full|heavyhex
               [--qubits N] [--gateset cx|cz] [--router sp|lookahead]
               [--no-opt] [--out <file.qasm>] [--verify]
  qdt fuzz     [--seed S] [--cases N] [--chaos] [--corpus DIR] [--clifford]
               [--max-qubits N] [--max-ops N] [--no-shrink] [--no-parser]
               [--plant tflip|cxdrop|phasedrift] [--replay file.qasm]
               [--case-seed S]   (replay one case from its stored seed)
               [--jobs N]        (fan cases out over N worker threads)
               SIGINT/SIGTERM drain: in-flight cases finish + persist
  qdt serve    [--socket PATH]        (default: stdin/stdout pipe mode)
               [--workers N] [--max-queue N] [--max-tenant-queue N]
               [--timeout-ms N]       (default per-request deadline)
               [--max-timeout-ms N] [--max-memory-mb N]
               [--admission-cost LOG2] [--cache ENTRIES]
               [--drain-timeout-ms N] [--no-fault-injection]
               line-delimited JSON requests; SIGINT/SIGTERM drain gracefully

any subcommand:
  --metrics[=file.json]  dump the qdt::obs registry snapshot
  --trace-out FILE       write the span ring as Chrome trace-event JSON
                         (open in Perfetto / chrome://tracing)
  --trace-jsonl FILE     write the span ring as a JSONL event log
  --timeout-ms N         wall-clock budget (exit 3 when exceeded)
  --max-memory-mb N      data-structure memory budget (exit 3 when exceeded)
  --threads N            qdt::par kernel thread cap (default 1 or
                         QDT_THREADS; 0 = all hardware threads; results
                         are bitwise identical at any thread count)
  --dd-table-mb N        decision-diagram unique-table bound in MiB
                         (default unbounded or QDT_DD_TABLE_MB; exceeding
                         it triggers GC, then a typed dd_nodes error)
)";
  std::exit(2);
}

/// Set by the SIGINT/SIGTERM handler; polled by `serve` (between poll()
/// ticks) and `fuzz` (between cases) to drain gracefully.
std::atomic<bool> g_stop{false};

extern "C" void on_stop_signal(int) {
  g_stop.store(true, std::memory_order_relaxed);
}

/// Route SIGINT/SIGTERM to the stop flag. Deliberately no SA_RESTART:
/// a blocked poll()/read() must come back with EINTR so the transport
/// re-checks the flag instead of sleeping through the shutdown request.
void install_stop_handlers() {
  struct sigaction sa {};
  sa.sa_handler = on_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill the daemon
}

ir::Circuit load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error::bad_input("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ir::Circuit c = ir::parse_qasm(buf.str());
  c.set_name(path);
  return c;
}

/// Flag map from argv; positional args returned separately.
std::map<std::string, std::string> parse_flags(
    const std::vector<std::string>& args, std::vector<std::string>& pos) {
  std::map<std::string, std::string> flags;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i].rfind("--", 0) == 0) {
      const std::string key = args[i].substr(2);
      if (const auto eq = key.find('='); eq != std::string::npos) {
        // --key=value form (used by --metrics=file.json).
        flags[key.substr(0, eq)] = key.substr(eq + 1);
      } else if (key == "state" || key == "no-opt" || key == "verify" ||
                 key == "metrics" || key == "robust" || key == "chaos" ||
                 key == "no-shrink" || key == "no-parser" ||
                 key == "trace" || key == "json" || key == "no-compact" ||
                 key == "no-fault-injection" || key == "clifford") {
        flags[key] = "";
      } else if (i + 1 < args.size()) {
        flags[key] = args[++i];
      } else {
        usage();
      }
    } else {
      pos.push_back(args[i]);
    }
  }
  return flags;
}

/// Honor --metrics[=file.json]: dump the registry snapshot after the run.
void emit_metrics(const std::map<std::string, std::string>& flags) {
  const auto it = flags.find("metrics");
  if (it == flags.end()) {
    return;
  }
  const std::string report = core::obs_report();
  if (it->second.empty()) {
    std::cout << report << "\n";
    return;
  }
  std::ofstream out(it->second);
  if (!out) {
    throw Error::bad_input("cannot write " + it->second);
  }
  out << report << "\n";
  // stderr: `serve` owns stdout for protocol lines, and confirmations are
  // diagnostics everywhere else too.
  std::cerr << "wrote metrics to " << it->second << "\n";
}

/// Honor --threads N on any subcommand: cap the qdt::par worker pool.
/// QDT_THREADS supplies the default when the flag is absent.
void apply_threads(const std::map<std::string, std::string>& flags) {
  if (const auto it = flags.find("threads"); it != flags.end()) {
    par::set_max_threads(std::stoul(it->second));
  }
}

/// Honor --dd-table-mb N on any subcommand: bound the decision-diagram
/// unique-table footprint (0 = unbounded). QDT_DD_TABLE_MB supplies the
/// default when the flag is absent; the explicit flag wins over the env.
void apply_dd_table(const std::map<std::string, std::string>& flags) {
  if (const auto it = flags.find("dd-table-mb"); it != flags.end()) {
    dd::PackageConfig cfg = dd::default_package_config();
    cfg.unique_table_mb = std::stoul(it->second);
    dd::set_default_package_config(cfg);
  }
}

/// Budget from --timeout-ms / --max-memory-mb, both optional.
guard::Budget budget_from(const std::map<std::string, std::string>& flags) {
  guard::Budget b;
  if (const auto it = flags.find("timeout-ms"); it != flags.end()) {
    b.deadline_seconds = std::stod(it->second) / 1000.0;
  }
  if (const auto it = flags.find("max-memory-mb"); it != flags.end()) {
    b.max_memory_bytes = std::stoul(it->second) * std::size_t{1024 * 1024};
  }
  return b;
}

int cmd_stats(const std::vector<std::string>& args) {
  std::vector<std::string> pos;
  auto flags = parse_flags(args, pos);
  if (pos.size() != 1) {
    usage();
  }
  apply_threads(flags);
  apply_dd_table(flags);
  const ir::Circuit c = load(pos[0]);
  const auto s = c.stats();
  std::cout << "qubits:       " << s.num_qubits << "\n";
  std::cout << "gates:        " << s.total_gates << "\n";
  std::cout << "   1-qubit:    " << s.single_qubit << "\n";
  std::cout << "  2-qubit:    " << s.two_qubit << "\n";
  std::cout << "  multi:      " << s.multi_qubit << "\n";
  std::cout << "t-count:      " << s.t_count << "\n";
  std::cout << "depth:        " << s.depth << "\n";
  std::cout << "measurements: " << s.measurements << "\n";
  std::cout << "clifford:     "
            << (stab::is_clifford_circuit(c) ? "yes" : "no") << "\n";
  std::cout << "recommended:  "
            << core::backend_name(core::recommend_backend(c)) << "\n";
  std::cout << "by gate:\n";
  for (const auto& [name, count] : s.by_name) {
    std::cout << "  " << name << ": " << count << "\n";
  }
  emit_metrics(flags);
  return 0;
}

int cmd_lint(const std::vector<std::string>& args) {
  std::vector<std::string> pos;
  auto flags = parse_flags(args, pos);
  if (pos.size() != 1) {
    usage();
  }
  apply_threads(flags);
  apply_dd_table(flags);
  const ir::Circuit c = load(pos[0]);
  lint::PlanConstraints constraints;
  constraints.want_state = flags.contains("state");
  constraints.has_noise = flags.contains("noise");
  const lint::Report report = lint::run(c, constraints);
  if (flags.contains("json")) {
    std::cout << lint::to_json(report) << "\n";
    emit_metrics(flags);
    return report.clean() ? 0 : 1;
  }
  const lint::CircuitFacts& f = report.facts;
  std::cout << "qubits:            " << f.num_qubits << "\n";
  std::cout << "gates:             " << f.unitary_gates << " (depth "
            << f.depth << ", " << f.measurements << " measurements)\n";
  std::cout << "t-count:           " << f.t_count << "\n";
  std::cout << "clifford:          " << (f.is_clifford ? "yes" : "no")
            << " (fraction " << f.clifford_fraction << ")\n";
  std::cout << "max lightcone:     " << f.max_lightcone << " of "
            << f.num_qubits << " qubits (mean " << f.mean_lightcone << ")\n";
  std::cout << "mps bond bound:    2^" << f.mps_bond_log2 << "\n";
  std::cout << "tn contraction:    ~2^" << f.tn_cost_log2 << " flops (peak 2^"
            << f.tn_peak_log2 << " elements)\n";
  std::cout << "dd growth score:   " << f.dd_growth_score << " (~2^"
            << f.dd_nodes_log2 << " nodes)\n";
  std::cout << "plan:\n";
  for (const auto& e : report.plan.estimates) {
    std::cout << "  " << lint::backend_label(e.backend) << ": ";
    if (e.feasible) {
      std::cout << "cost ~2^" << e.cost_log2;
    } else {
      std::cout << "infeasible";
    }
    std::cout << " — " << e.rationale << "\n";
  }
  for (const auto& d : report.diagnostics) {
    std::cout << lint::severity_name(d.severity) << ": [" << d.code << "] "
              << d.message << "\n";
  }
  if (report.clean()) {
    std::cout << "clean\n";
  } else {
    std::cout << "warnings: " << report.warnings() << "\n";
  }
  emit_metrics(flags);
  return report.clean() ? 0 : 1;
}

core::SimBackend backend_from(const std::string& name,
                              const ir::Circuit& c) {
  if (name == "array") {
    return core::SimBackend::Array;
  }
  if (name == "dd") {
    return core::SimBackend::DecisionDiagram;
  }
  if (name == "tn") {
    return core::SimBackend::TensorNetwork;
  }
  if (name == "mps") {
    return core::SimBackend::Mps;
  }
  if (name == "stab") {
    return core::SimBackend::Stabilizer;
  }
  if (name == "auto") {
    return core::recommend_backend(c);
  }
  usage();
}

int cmd_simulate(const std::vector<std::string>& args) {
  std::vector<std::string> pos;
  auto flags = parse_flags(args, pos);
  if (pos.size() != 1) {
    usage();
  }
  apply_threads(flags);
  apply_dd_table(flags);
  const ir::Circuit c = load(pos[0]);
  const auto backend = backend_from(
      flags.contains("backend") ? flags["backend"] : "auto", c);
  core::SimulateOptions opts;
  opts.shots = flags.contains("shots") ? std::stoul(flags["shots"]) : 1024;
  opts.seed = flags.contains("seed") ? std::stoull(flags["seed"]) : 1;
  opts.want_state = flags.contains("state");
  opts.budget = budget_from(flags);
  if (flags.contains("noise")) {
    opts.noise =
        arrays::NoiseModel::depolarizing_model(std::stod(flags["noise"]));
  }
  core::SimulateResult res;
  std::string used = core::backend_name(backend);
  if (flags.contains("robust")) {
    const auto robust = core::simulate_robust(
        c, opts,
        flags.contains("backend") && flags["backend"] != "auto"
            ? std::optional<core::SimBackend>{backend}
            : std::nullopt);
    for (const auto& step : robust.attempts) {
      if (!step.error.empty()) {
        std::cout << "fallback: " << step.stage << " failed (" << step.error
                  << ")\n";
      } else {
        used = step.stage;
      }
    }
    res = robust.result;
  } else {
    res = core::simulate(c, backend, opts);
  }
  std::cout << "backend: " << used
            << "   representation size: " << res.representation_size
            << "   time: " << res.seconds << "s\n";
  if (res.state.has_value()) {
    for (std::size_t i = 0; i < res.state->size(); ++i) {
      const Complex a = (*res.state)[i];
      if (std::abs(a) > 1e-9) {
        std::cout << "  |" << i << "> : " << a.real() << " "
                  << (a.imag() >= 0 ? "+" : "-") << " "
                  << std::abs(a.imag()) << "i\n";
      }
    }
  }
  for (const auto& [word, count] : res.counts) {
    std::cout << word << ": " << count << "\n";
  }
  emit_metrics(flags);
  return 0;
}

int cmd_explain(const std::vector<std::string>& args) {
  std::vector<std::string> pos;
  auto flags = parse_flags(args, pos);
  if (pos.size() != 1) {
    usage();
  }
  apply_threads(flags);
  apply_dd_table(flags);
  const ir::Circuit c = load(pos[0]);
  core::SimulateOptions opts;
  opts.shots = flags.contains("shots") ? std::stoul(flags["shots"]) : 0;
  opts.seed = flags.contains("seed") ? std::stoull(flags["seed"]) : 1;
  opts.want_state = flags.contains("state");
  opts.budget = budget_from(flags);
  if (flags.contains("noise")) {
    opts.noise =
        arrays::NoiseModel::depolarizing_model(std::stod(flags["noise"]));
  }
  const core::ExplainReport report = core::explain_simulate(c, opts);
  if (flags.contains("json")) {
    std::cout << core::to_json(report) << "\n";
  } else {
    std::cout << core::to_text(report);
  }
  emit_metrics(flags);
  if (!report.fatal_code.empty()) {
    return report.fatal_code == std::string("resource-exhausted") ? 3 : 4;
  }
  return 0;
}

int cmd_verify(const std::vector<std::string>& args) {
  std::vector<std::string> pos;
  auto flags = parse_flags(args, pos);
  if (pos.size() != 2) {
    usage();
  }
  apply_threads(flags);
  apply_dd_table(flags);
  const ir::Circuit a = load(pos[0]);
  const ir::Circuit b = load(pos[1]);
  core::EcMethod method = core::EcMethod::DdAlternating;
  if (flags.contains("method")) {
    const std::string& m = flags["method"];
    if (m == "array") {
      method = core::EcMethod::Array;
    } else if (m == "dd") {
      method = core::EcMethod::DdAlternating;
    } else if (m == "dd-seq") {
      method = core::EcMethod::DdSequential;
    } else if (m == "dd-sim") {
      method = core::EcMethod::DdSimulative;
    } else if (m == "zx") {
      method = core::EcMethod::Zx;
    } else {
      usage();
    }
  }
  const guard::Budget budget = budget_from(flags);
  core::VerifyResult res;
  std::string used = core::method_name(method);
  if (flags.contains("robust")) {
    const auto robust = core::verify_robust(
        a.unitary_part(), b.unitary_part(),
        flags.contains("method") ? std::optional<core::EcMethod>{method}
                                 : std::nullopt,
        budget);
    for (const auto& step : robust.attempts) {
      if (!step.error.empty()) {
        std::cout << "fallback: " << step.stage << " failed (" << step.error
                  << ")\n";
      } else {
        used = step.stage;
      }
    }
    res = robust.result;
  } else {
    res = core::verify(a.unitary_part(), b.unitary_part(), method, budget);
  }
  std::cout << (res.equivalent ? "EQUIVALENT" : "NOT EQUIVALENT")
            << (res.conclusive ? "" : " (inconclusive)") << "  [" << used
            << ", " << res.detail << ", " << res.seconds << "s]\n";
  emit_metrics(flags);
  return res.equivalent ? 0 : 1;
}

/// Minimal JSON string escaping for optimizer notes/paths.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

int cmd_opt(const std::vector<std::string>& args) {
  std::vector<std::string> pos;
  auto flags = parse_flags(args, pos);
  if (pos.size() != 1) {
    usage();
  }
  apply_threads(flags);
  apply_dd_table(flags);
  const guard::BudgetScope scope(budget_from(flags));
  const ir::Circuit c = load(pos[0]);
  flow::OptOptions opts;
  opts.compact_wires = !flags.contains("no-compact");
  const flow::OptResult res = flow::optimize(c, opts);
  if (flags.contains("out")) {
    std::ofstream out(flags["out"]);
    if (!out) {
      throw Error::bad_input("cannot write " + flags["out"]);
    }
    out << ir::to_qasm(res.circuit);
  }
  if (flags.contains("json")) {
    std::ostringstream js;
    js << "{\"file\":\"" << json_escape(pos[0]) << "\""
       << ",\"gates_before\":" << res.gates_before
       << ",\"gates_after\":" << res.gates_after
       << ",\"ops_before\":" << res.ops_before
       << ",\"ops_after\":" << res.ops_after
       << ",\"qubits_before\":" << res.wires_before
       << ",\"qubits_after\":" << res.wires_after
       << ",\"global_phase\":\"" << json_escape(res.global_phase.str()) << "\""
       << ",\"global_phase_radians\":" << res.global_phase_radians
       << ",\"certified\":" << (res.certified ? "true" : "false")
       << ",\"rewrites\":[";
    for (std::size_t i = 0; i < res.rewrites.size(); ++i) {
      const flow::Rewrite& rw = res.rewrites[i];
      js << (i == 0 ? "" : ",") << "{\"kind\":\""
         << flow::rewrite_kind_name(rw.kind) << "\",\"pass\":" << rw.pass
         << ",\"op\":" << rw.op;
      if (rw.kind == flow::Rewrite::Kind::CancelPair ||
          rw.kind == flow::Rewrite::Kind::MergeRotation) {
        js << ",\"partner\":" << rw.partner;
      }
      js << ",\"phase_radians\":" << rw.phase_radians << ",\"note\":\""
         << json_escape(rw.note) << "\"}";
    }
    js << "]}";
    std::cout << js.str() << "\n";
  } else {
    std::cout << "gates:        " << res.gates_before << " -> "
              << res.gates_after << "\n";
    std::cout << "ops:          " << res.ops_before << " -> " << res.ops_after
              << "\n";
    std::cout << "qubits:       " << res.wires_before << " -> "
              << res.wires_after << "\n";
    std::cout << "global phase: " << res.global_phase.str() << " ("
              << res.global_phase_radians << " rad)\n";
    std::cout << "rewrites:     " << res.rewrites.size()
              << (res.certified ? " (all certified)" : "") << "\n";
    for (const auto& rw : res.rewrites) {
      std::cout << "  pass " << rw.pass << ": "
                << flow::rewrite_kind_name(rw.kind) << " op " << rw.op;
      if (rw.kind == flow::Rewrite::Kind::CancelPair ||
          rw.kind == flow::Rewrite::Kind::MergeRotation) {
        std::cout << " + " << rw.partner;
      }
      if (!rw.note.empty()) {
        std::cout << " — " << rw.note;
      }
      std::cout << "\n";
    }
    if (flags.contains("out")) {
      std::cout << "wrote " << flags["out"] << "\n";
    }
  }
  emit_metrics(flags);
  return 0;
}

int cmd_compile(const std::vector<std::string>& args) {
  std::vector<std::string> pos;
  auto flags = parse_flags(args, pos);
  if (pos.size() != 1 || !flags.contains("target")) {
    usage();
  }
  apply_threads(flags);
  apply_dd_table(flags);
  const guard::BudgetScope scope(budget_from(flags));
  const ir::Circuit c = load(pos[0]);
  const std::size_t n = flags.contains("qubits")
                            ? std::stoul(flags["qubits"])
                            : c.num_qubits();
  const std::string& t = flags["target"];
  transpile::CouplingMap coupling = [&]() -> transpile::CouplingMap {
    if (t == "line") {
      return transpile::CouplingMap::line(n);
    }
    if (t == "ring") {
      return transpile::CouplingMap::ring(n);
    }
    if (t == "grid") {
      std::size_t rows = 1;
      while (rows * rows < n) {
        ++rows;
      }
      return transpile::CouplingMap::grid(rows, (n + rows - 1) / rows);
    }
    if (t == "star") {
      return transpile::CouplingMap::star(n);
    }
    if (t == "full") {
      return transpile::CouplingMap::full(n);
    }
    if (t == "heavyhex") {
      return transpile::CouplingMap::heavy_hex_falcon();
    }
    usage();
  }();
  transpile::Target target{std::move(coupling),
                           flags.contains("gateset") &&
                                   flags["gateset"] == "cz"
                               ? transpile::NativeGateSet::CzRzSxX
                               : transpile::NativeGateSet::CxRzSxX,
                           t};
  transpile::TranspileOptions opts;
  opts.optimize = !flags.contains("no-opt");
  if (flags.contains("router") && flags["router"] == "sp") {
    opts.router = transpile::RouterKind::ShortestPath;
  }
  // Certified flow pre-pass ahead of transpilation (behind the same
  // --no-opt switch as the peephole passes). Wire compaction stays off so
  // the declared width survives; --verify below checks the transpiler
  // against this pre-optimized input — the pre-pass itself is covered by
  // its own certificate checker.
  ir::Circuit input = c.unitary_part();
  std::size_t pre_removed = 0;
  if (opts.optimize) {
    flow::OptOptions oo;
    oo.compact_wires = false;
    flow::OptResult pre = flow::optimize(input, oo);
    pre_removed = pre.ops_before - pre.ops_after;
    input = std::move(pre.circuit);
  }
  const auto res = transpile::transpile(input, target, opts);
  if (pre_removed > 0) {
    std::cout << "flow:   removed " << pre_removed << " ops pre-routing\n";
  }
  std::cout << "gates:  " << res.before.total_gates << " -> "
            << res.after.total_gates << "\n";
  std::cout << "2q:     " << res.before.two_qubit << " -> "
            << res.after.two_qubit << "\n";
  std::cout << "depth:  " << res.before.depth << " -> " << res.after.depth
            << "\n";
  std::cout << "swaps:  " << res.swaps_inserted << "\n";
  if (flags.contains("out")) {
    std::ofstream out(flags["out"]);
    out << ir::to_qasm(res.circuit);
    std::cout << "wrote " << flags["out"] << "\n";
  }
  if (flags.contains("verify")) {
    const auto ec = core::verify(
        transpile::padded_original(input, target),
        transpile::restored_for_verification(res),
        core::EcMethod::DdAlternating);
    std::cout << "verification: "
              << (ec.equivalent ? "EQUIVALENT" : "NOT EQUIVALENT") << "\n";
    emit_metrics(flags);
    return ec.equivalent ? 0 : 1;
  }
  emit_metrics(flags);
  return 0;
}

int cmd_fuzz(const std::vector<std::string>& args) {
  std::vector<std::string> pos;
  auto flags = parse_flags(args, pos);
  if (!pos.empty()) {
    usage();
  }
  apply_threads(flags);
  apply_dd_table(flags);

  // --replay: classify one persisted repro instead of generating cases.
  if (flags.contains("replay")) {
    const ir::Circuit c = load(flags["replay"]);
    chaos::OracleOptions opts;
    if (flags.contains("plant")) {
      opts.adapters = chaos::default_state_adapters();
      opts.adapters.push_back(chaos::planted_adapter(flags["plant"]));
    }
    const auto report = chaos::run_oracle(c, opts);
    for (const auto& check : report.checks) {
      std::cout << "  " << check.check << ": "
                << chaos::outcome_name(check.outcome)
                << (check.detail.empty() ? "" : " (" + check.detail + ")")
                << "\n";
    }
    std::cout << chaos::outcome_name(report.outcome)
              << (report.detail.empty() ? "" : "  [" + report.detail + "]")
              << "\n";
    emit_metrics(flags);
    return report.is_finding() ? 1 : 0;
  }

  chaos::FuzzOptions opts;
  opts.seed = flags.contains("seed") ? std::stoull(flags["seed"]) : 1;
  opts.cases = flags.contains("cases") ? std::stoul(flags["cases"]) : 100;
  if (flags.contains("case-seed")) {
    // Corpus replay: the stored value is the per-case seed itself, so it
    // must feed the case Rng directly — not be re-derived via
    // case_seed(seed, 0), which would generate a different circuit.
    opts.seed = std::stoull(flags["case-seed"]);
    opts.seed_is_case_seed = true;
    opts.cases = 1;
  }
  opts.chaos = flags.contains("chaos");
  opts.parser_fuzz = !flags.contains("no-parser");
  opts.shrink_findings = !flags.contains("no-shrink");
  opts.trace = flags.contains("trace");
  if (flags.contains("corpus")) {
    opts.corpus_dir = flags["corpus"];
  }
  if (flags.contains("max-qubits")) {
    opts.generator.max_qubits = std::stoul(flags["max-qubits"]);
  }
  if (flags.contains("max-ops")) {
    opts.generator.max_ops = std::stoul(flags["max-ops"]);
  }
  // Clifford-only lane: generation restricted to Clifford circuits so the
  // packed-vs-reference stabilizer differential (polynomial on both
  // sides) carries the oracle duty at widths the dense backends cannot
  // reach — pair with --max-qubits 256 and beyond.
  opts.generator.clifford_only = flags.contains("clifford");
  if (flags.contains("plant")) {
    opts.plant = flags["plant"];
  }
  if (flags.contains("jobs")) {
    opts.jobs = std::stoul(flags["jobs"]);
  }
  opts.log = &std::cout;
  opts.stop = &g_stop;
  install_stop_handlers();

  const auto report = chaos::run_fuzz(opts);
  if (report.interrupted) {
    std::cout << "interrupted after " << report.cases << "/" << opts.cases
              << " cases (findings persisted; exit code reflects what ran)\n";
  }
  std::cout << "cases:          " << report.cases << "\n";
  std::cout << "  agree:        " << report.agree << "\n";
  std::cout << "  typed errors: " << report.typed_errors << "\n";
  std::cout << "  mismatches:   " << report.mismatch << "\n";
  std::cout << "  escapes:      " << report.escapes << "\n";
  if (report.parser_cases > 0) {
    std::cout << "parser cases:   " << report.parser_cases << " ("
              << report.parser_rejected << " rejected with typed errors)\n";
  }
  if (report.chaos_cases > 0) {
    std::cout << "chaos cases:    " << report.chaos_cases << " ("
              << report.chaos_degraded << " degraded, "
              << report.chaos_faults_fired << " faults fired)\n";
  }
  std::cout << "findings:       " << report.findings.size() << "\n";
  for (const auto& f : report.findings) {
    std::cout << "  case " << f.case_index << " (seed " << f.case_seed
              << "): " << f.classification << " — " << f.detail;
    if (f.shrunk.size() < f.circuit.size()) {
      std::cout << "  [shrunk to " << f.shrunk.size() << " ops]";
    }
    std::cout << "\n";
  }
  emit_metrics(flags);
  return report.clean() ? 0 : 1;
}

int cmd_serve(const std::vector<std::string>& args) {
  std::vector<std::string> pos;
  auto flags = parse_flags(args, pos);
  if (!pos.empty()) {
    usage();
  }
  apply_threads(flags);
  apply_dd_table(flags);

  serve::ServeOptions opts;
  if (flags.contains("workers")) {
    opts.workers = std::stoul(flags["workers"]);
  }
  if (flags.contains("max-queue")) {
    opts.max_queue = std::stoul(flags["max-queue"]);
  }
  if (flags.contains("max-tenant-queue")) {
    opts.max_tenant_queue = std::stoul(flags["max-tenant-queue"]);
  }
  if (flags.contains("timeout-ms")) {
    opts.default_timeout_ms = std::stod(flags["timeout-ms"]);
  }
  if (flags.contains("max-timeout-ms")) {
    opts.max_timeout_ms = std::stod(flags["max-timeout-ms"]);
  }
  opts.max_timeout_ms = std::max(opts.max_timeout_ms, opts.default_timeout_ms);
  if (flags.contains("max-memory-mb")) {
    opts.default_max_memory_mb = std::stoul(flags["max-memory-mb"]);
  }
  if (flags.contains("admission-cost")) {
    opts.admission_max_cost_log2 = std::stod(flags["admission-cost"]);
  }
  if (flags.contains("cache")) {
    opts.plan_cache_entries = std::stoul(flags["cache"]);
  }
  opts.allow_fault_injection = !flags.contains("no-fault-injection");

  serve::TransportOptions topts;
  if (flags.contains("socket")) {
    topts.socket_path = flags["socket"];
  }
  topts.stop = &g_stop;
  if (flags.contains("drain-timeout-ms")) {
    topts.drain_timeout_seconds =
        std::stod(flags["drain-timeout-ms"]) / 1000.0;
  }

  install_stop_handlers();
  // Protocol owns stdout in pipe mode — diagnostics go to stderr.
  std::cerr << "qdt serve: " << opts.workers << " workers, queue "
            << opts.max_queue << " (tenant " << opts.max_tenant_queue
            << "), deadline " << opts.default_timeout_ms << "ms, on "
            << (topts.socket_path.empty() ? std::string("stdio")
                                          : topts.socket_path)
            << "\n";

  serve::Server server(opts);
  const std::uint64_t submitted =
      topts.socket_path.empty() ? serve::run_stdio(server, topts)
                                : serve::run_unix_socket(server, topts);

  const serve::ServerStatus s = server.status();
  std::cerr << "qdt serve: drained after " << submitted << " requests ("
            << s.completed << " completed, " << s.failed << " failed, "
            << s.rejected << " rejected, " << s.shed << " shed, "
            << s.cancelled << " cancelled, " << s.degraded << " degraded, "
            << s.panics << " panics; cache " << s.cache_hits << " hits / "
            << s.cache_misses << " misses; peak rss " << s.rss_peak_mb
            << " MB)\n";
  emit_metrics(flags);
  return 0;
}

/// Honor --trace-out / --trace-jsonl from the raw argument list. Runs after
/// dispatch — including failing runs, where the trace is most valuable —
/// so the flags are re-scanned here rather than inside each subcommand.
void emit_traces(const std::vector<std::string>& args) {
  const auto value_of = [&args](const std::string& flag) -> std::string {
    const std::string prefix = flag + "=";
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i] == flag && i + 1 < args.size()) {
        return args[i + 1];
      }
      if (args[i].rfind(prefix, 0) == 0) {
        return args[i].substr(prefix.size());
      }
    }
    return {};
  };
  const std::string chrome = value_of("--trace-out");
  const std::string jsonl = value_of("--trace-jsonl");
  if (chrome.empty() && jsonl.empty()) {
    return;
  }
  const trace::TraceSnapshot snap = trace::snapshot();
  const auto write = [](const std::string& path, const std::string& body) {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write trace to " << path << "\n";
      return;
    }
    out << body;
    std::cerr << "wrote trace to " << path << "\n";
  };
  if (!chrome.empty()) {
    write(chrome, trace::to_chrome_json(snap));
  }
  if (!jsonl.empty()) {
    write(jsonl, trace::to_jsonl(snap));
  }
}

int dispatch(const std::string& cmd, const std::vector<std::string>& args) {
  if (cmd == "stats") {
    return cmd_stats(args);
  }
  if (cmd == "lint") {
    return cmd_lint(args);
  }
  if (cmd == "simulate" || cmd == "run") {
    return cmd_simulate(args);
  }
  if (cmd == "explain") {
    return cmd_explain(args);
  }
  if (cmd == "verify") {
    return cmd_verify(args);
  }
  if (cmd == "opt") {
    return cmd_opt(args);
  }
  if (cmd == "compile") {
    return cmd_compile(args);
  }
  if (cmd == "fuzz") {
    return cmd_fuzz(args);
  }
  if (cmd == "serve") {
    return cmd_serve(args);
  }
  usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
  }
  const std::string cmd = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  int rc = 0;
  try {
    rc = dispatch(cmd, args);
  } catch (const qdt::Error& e) {
    std::cerr << e.code_name() << ": " << e.what() << "\n";
    rc = 4;
    switch (e.code()) {
      case qdt::ErrorCode::BadInput:
      case qdt::ErrorCode::Unsupported:
        rc = 2;
        break;
      case qdt::ErrorCode::ResourceExhausted:
        rc = 3;
        break;
      case qdt::ErrorCode::Internal:
        rc = 4;
        break;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    rc = 2;
  }
  try {
    emit_traces(args);
  } catch (const std::exception& e) {
    std::cerr << "trace export failed: " << e.what() << "\n";
  }
  return rc;
}
