#!/usr/bin/env python3
"""Validate the qdt CLI's trace exports end to end.

Runs `qdt run <example> --trace-out t.json --trace-jsonl t.jsonl` and
checks both files against the formats documented in src/trace/export.cpp:

Chrome trace-event JSON (Perfetto-loadable):
  - top-level object with displayTimeUnit, traceEvents list, otherData
  - process_name / thread_name metadata ("M") events
  - every "X" event has name/ts/dur/pid/tid and args.span_id / args.parent
  - parents reference a span_id present in the file, or 0 (root)
  - otherData.spans_dropped is a non-negative integer

JSONL stream:
  - first line is a header record, last line a summary record
  - span lines carry id/parent/thread/name/start_us/dur_us
  - summary.spans matches the number of span lines

In QDT_OBS_ENABLED=OFF builds the exporters still emit valid framing with
zero spans, so an empty traceEvents list (metadata only) is accepted.

Usage: check_trace_schema.py <qdt-binary> <repo_root>
Exit code 0 on success, 1 with a diagnostic otherwise.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path


def fail(msg: str) -> None:
    print(f"check_trace_schema: {msg}", file=sys.stderr)
    sys.exit(1)


def check_chrome(path: Path) -> int:
    """Validate the Chrome trace file; return the number of X events."""
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as e:
        fail(f"{path.name}: not valid JSON: {e}")
    if doc.get("displayTimeUnit") != "ms":
        fail(f"{path.name}: displayTimeUnit must be 'ms'")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path.name}: traceEvents must be a list")
    other = doc.get("otherData")
    if not isinstance(other, dict) or not isinstance(
        other.get("spans_dropped"), int
    ) or other["spans_dropped"] < 0:
        fail(f"{path.name}: otherData.spans_dropped must be a non-negative int")

    span_ids = set()
    xs = []
    saw_process_name = False
    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "process_name":
                saw_process_name = True
            continue
        if ph != "X":
            fail(f"{path.name}: unexpected event phase {ph!r}")
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in ev:
                fail(f"{path.name}: X event missing {key!r}: {ev}")
        args = ev.get("args")
        if not isinstance(args, dict):
            fail(f"{path.name}: X event missing args: {ev}")
        for key in ("span_id", "parent"):
            if not isinstance(args.get(key), int):
                fail(f"{path.name}: args.{key} must be an int: {ev}")
        span_ids.add(args["span_id"])
        xs.append(ev)
    if events and not saw_process_name:
        fail(f"{path.name}: missing process_name metadata event")
    for ev in xs:
        parent = ev["args"]["parent"]
        if parent != 0 and parent not in span_ids:
            fail(f"{path.name}: parent {parent} references no span in file")
    return len(xs)


def check_jsonl(path: Path) -> int:
    """Validate the JSONL file; return the number of span records."""
    lines = path.read_text(encoding="utf-8").splitlines()
    if len(lines) < 2:
        fail(f"{path.name}: needs at least header and summary lines")
    records = []
    for i, line in enumerate(lines, 1):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as e:
            fail(f"{path.name}:{i}: not valid JSON: {e}")
    header, spans, summary = records[0], records[1:-1], records[-1]
    if header.get("type") != "header" or "capacity" not in header:
        fail(f"{path.name}: first line must be a header record")
    if summary.get("type") != "summary":
        fail(f"{path.name}: last line must be a summary record")
    for rec in spans:
        for key in ("id", "parent", "thread", "name", "start_us", "dur_us"):
            if key not in rec:
                fail(f"{path.name}: span record missing {key!r}: {rec}")
    if summary.get("spans") != len(spans):
        fail(f"{path.name}: summary.spans={summary.get('spans')} but "
             f"{len(spans)} span lines present")
    return len(spans)


def main() -> int:
    if len(sys.argv) != 3:
        fail("usage: check_trace_schema.py <qdt-binary> <repo_root>")
    qdt = Path(sys.argv[1])
    root = Path(sys.argv[2])
    example = root / "examples" / "ghz20.qasm"
    if not example.is_file():
        fail(f"missing example circuit {example}")

    with tempfile.TemporaryDirectory() as tmp:
        chrome = Path(tmp) / "t.json"
        jsonl = Path(tmp) / "t.jsonl"
        cmd = [str(qdt), "run", str(example), "--shots", "32",
               "--threads", "2", "--trace-out", str(chrome),
               "--trace-jsonl", str(jsonl)]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
        if not chrome.is_file():
            fail("--trace-out produced no file")
        if not jsonl.is_file():
            fail("--trace-jsonl produced no file")
        n_chrome = check_chrome(chrome)
        n_jsonl = check_jsonl(jsonl)

    if (n_chrome == 0) != (n_jsonl == 0):
        fail(f"exporters disagree: {n_chrome} Chrome spans vs "
             f"{n_jsonl} JSONL spans")
    mode = "OBS-off framing only" if n_chrome == 0 else f"{n_chrome} spans"
    print(f"trace schema OK ({mode})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
