#!/usr/bin/env python3
"""Validate the qdt CLI's static-analysis JSON contracts end to end.

Two commands share the machine-readable surface that editor integrations
and the CI opt-smoke step key on; this ctest pins both:

`qdt lint --json` (every examples/*.qasm):
  - facts object with the full fact set, including the flow-derived
    fields: clifford_regions (list of {begin, end, unitary_gates} with
    0 <= begin < end <= ops, non-overlapping, in order),
    max_clifford_region_gates, constant_state_coverage in [0, 1], and
    constant_identity_ops
  - plan: non-empty ranked list of {backend, feasible, cost_log2,
    rationale}, feasible entries sorted cheapest-first
  - diagnostics list of {severity, code, message}; warnings counts the
    warning-severity entries; clean == (warnings == 0)

`qdt opt --json` (every examples/*.qasm):
  - gates_after <= gates_before, ops_after <= ops_before,
    qubits_after <= qubits_before
  - certified is true (the certificate checker replayed every rewrite)
  - rewrites list of {kind, pass, op, phase_radians, note} with known
    kinds; cancel_pair/merge_rotation entries carry a partner
  - the optimized --out QASM reparses and its opt report is a fixpoint
    (optimizing again removes nothing)
  - across the example corpus, at least one circuit must lose >= 10% of
    its gates — the headline the README advertises; a silent regression
    of the optimizer to a no-op fails here, not in a dashboard

Usage: check_lint_schema.py <qdt-binary> <repo_root>
Exit code 0 on success, 1 with a diagnostic otherwise.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

REWRITE_KINDS = {
    "dead_gate",
    "fold_phase",
    "cancel_pair",
    "merge_rotation",
    "compact_wires",
}

FACT_KEYS = {
    "qubits", "gates", "measurements", "depth", "t_count", "clifford",
    "clifford_fraction", "clifford_regions", "max_clifford_region_gates",
    "constant_state_coverage", "constant_identity_ops", "dead_qubits",
    "unused_ancillas", "lightcone", "max_lightcone", "cancelling_pairs",
    "mergeable_pairs", "mps_bond_log2", "mps_bond_bound", "tn_cost_log2",
    "tn_peak_log2", "dd_growth_score", "dd_nodes_log2",
}


def fail(msg: str) -> None:
    print(f"check_lint_schema: {msg}", file=sys.stderr)
    sys.exit(1)


def run_json(qdt: Path, args: list[str]) -> dict:
    proc = subprocess.run(
        [str(qdt)] + args, capture_output=True, text=True, timeout=300
    )
    if proc.returncode not in (0, 1):  # lint exits 1 on warnings
        fail(f"{' '.join(args)} exited {proc.returncode}:\n{proc.stderr}")
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        fail(f"{' '.join(args)}: output is not JSON ({e}):\n{proc.stdout}")


def check_lint(qdt: Path, example: Path) -> None:
    doc = run_json(qdt, ["lint", str(example), "--json"])
    name = example.name
    facts = doc.get("facts")
    if not isinstance(facts, dict):
        fail(f"{name}: lint report missing facts object")
    missing = FACT_KEYS - facts.keys()
    if missing:
        fail(f"{name}: facts missing keys {sorted(missing)}")

    regions = facts["clifford_regions"]
    if not isinstance(regions, list):
        fail(f"{name}: clifford_regions must be a list")
    prev_end = 0
    max_gates = 0
    for r in regions:
        if not {"begin", "end", "unitary_gates"} <= r.keys():
            fail(f"{name}: malformed clifford region {r}")
        if not (prev_end <= r["begin"] < r["end"]):
            fail(f"{name}: clifford regions must be ordered, non-overlapping "
                 f"half-open ranges: {regions}")
        prev_end = r["end"]
        max_gates = max(max_gates, r["unitary_gates"])
    if facts["max_clifford_region_gates"] != max_gates:
        fail(f"{name}: max_clifford_region_gates="
             f"{facts['max_clifford_region_gates']} but regions say "
             f"{max_gates}")
    cov = facts["constant_state_coverage"]
    if not (isinstance(cov, (int, float)) and 0.0 <= cov <= 1.0):
        fail(f"{name}: constant_state_coverage must be in [0,1]: {cov}")

    plan = doc.get("plan")
    if not isinstance(plan, list) or not plan:
        fail(f"{name}: plan must be a non-empty list")
    feasible_costs = []
    for entry in plan:
        if not {"backend", "feasible", "cost_log2", "rationale"} <= entry.keys():
            fail(f"{name}: malformed plan entry {entry}")
        if entry["feasible"]:
            feasible_costs.append(entry["cost_log2"])
    if feasible_costs != sorted(feasible_costs):
        fail(f"{name}: feasible plan entries must rank cheapest-first: "
             f"{feasible_costs}")

    diags = doc.get("diagnostics")
    if not isinstance(diags, list):
        fail(f"{name}: diagnostics must be a list")
    warn_count = sum(1 for d in diags if d.get("severity") == "warning")
    if doc.get("warnings") != warn_count:
        fail(f"{name}: warnings={doc.get('warnings')} but "
             f"{warn_count} warning diagnostics present")
    if doc.get("clean") != (warn_count == 0):
        fail(f"{name}: clean flag inconsistent with warnings")


def check_opt(qdt: Path, example: Path, tmp: Path) -> float:
    """Validate one opt report; return the fractional gate reduction."""
    out = tmp / (example.stem + ".opt.qasm")
    doc = run_json(qdt, ["opt", str(example), "--json", "--out", str(out)])
    name = example.name
    for key in ("gates_before", "gates_after", "ops_before", "ops_after",
                "qubits_before", "qubits_after", "global_phase",
                "global_phase_radians", "certified", "rewrites"):
        if key not in doc:
            fail(f"{name}: opt report missing {key!r}")
    if doc["certified"] is not True:
        fail(f"{name}: opt report not certified")
    if doc["gates_after"] > doc["gates_before"]:
        fail(f"{name}: optimizer added gates: {doc['gates_before']} -> "
             f"{doc['gates_after']}")
    if doc["ops_after"] > doc["ops_before"]:
        fail(f"{name}: optimizer added ops")
    if doc["qubits_after"] > doc["qubits_before"]:
        fail(f"{name}: optimizer added qubits")
    for rw in doc["rewrites"]:
        if rw.get("kind") not in REWRITE_KINDS:
            fail(f"{name}: unknown rewrite kind {rw!r}")
        for key in ("pass", "op", "phase_radians", "note"):
            if key not in rw:
                fail(f"{name}: rewrite missing {key!r}: {rw}")
        if rw["kind"] in ("cancel_pair", "merge_rotation") and "partner" not in rw:
            fail(f"{name}: paired rewrite missing partner: {rw}")
    if not out.is_file():
        fail(f"{name}: --out produced no file")

    # The emitted circuit must reparse, and optimizing it again must be a
    # fixpoint — a non-idempotent optimizer is hiding missed or phantom
    # rewrites.
    again = run_json(qdt, ["opt", str(out), "--json"])
    if again["gates_after"] != again["gates_before"]:
        fail(f"{name}: optimizer is not a fixpoint: second run went "
             f"{again['gates_before']} -> {again['gates_after']}")

    before = doc["gates_before"]
    return (before - doc["gates_after"]) / before if before else 0.0


def main() -> int:
    if len(sys.argv) != 3:
        fail("usage: check_lint_schema.py <qdt-binary> <repo_root>")
    qdt = Path(sys.argv[1])
    root = Path(sys.argv[2])
    examples = sorted((root / "examples").glob("*.qasm"))
    if not examples:
        fail(f"no examples/*.qasm under {root}")

    reductions = {}
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        for example in examples:
            check_lint(qdt, example)
            reductions[example.name] = check_opt(qdt, example, tmp)

    big_wins = {n: r for n, r in reductions.items() if r >= 0.10}
    if not big_wins:
        fail(f"no example lost >= 10% of its gates under qdt opt: "
             f"{ {n: round(r, 3) for n, r in reductions.items()} }")
    summary = ", ".join(
        f"{n} -{r:.0%}" for n, r in sorted(big_wins.items())
    )
    print(f"lint+opt JSON schema OK over {len(examples)} examples "
          f"({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
