#!/usr/bin/env python3
"""Enforce the qdt::Error taxonomy at API boundaries.

Raw `throw std::runtime_error(...)` is banned everywhere under src/ and
tools/ except inside src/guard/ (where qdt::Error itself derives from
std::runtime_error). A raw runtime_error carries no ErrorCode, so the CLI
cannot map it to an exit code and core::simulate_robust() cannot tell a
budget violation from a bug — every boundary throw must go through
qdt::Error (bad_input / unsupported / exhausted / internal).

Usage: check_error_codes.py [repo_root]
Exit code 0 when clean, 1 with a list of offenders otherwise.
"""

import re
import sys
from pathlib import Path

BANNED = re.compile(r"throw\s+std::runtime_error")
SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".h"}


def scan(root: Path) -> list[tuple[Path, int]]:
    offenders = []
    for subdir in ("src", "tools"):
        base = root / subdir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES:
                continue
            if (root / "src" / "guard") in path.parents:
                continue
            text = path.read_text(encoding="utf-8", errors="replace")
            for match in BANNED.finditer(text):
                line = text.count("\n", 0, match.start()) + 1
                offenders.append((path.relative_to(root), line))
    return offenders


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path.cwd()
    offenders = scan(root)
    if not offenders:
        return 0
    print("raw `throw std::runtime_error` outside src/guard/ — use a")
    print("qdt::Error factory (bad_input/unsupported/exhausted/internal):")
    for path, line in offenders:
        print(f"  {path}:{line}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
