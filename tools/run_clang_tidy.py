#!/usr/bin/env python3
"""Run clang-tidy over every translation unit in src/ and tools/.

Reads the build's compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS is
on by default for this project), filters it to first-party sources, and
runs clang-tidy with the repo's .clang-tidy profile in parallel.

Exit codes: 0 clean, 1 findings, 77 when clang-tidy is not installed —
the ctest registration marks 77 as SKIP so local builds without the tool
stay green while CI (which installs clang-tidy) enforces the profile.

Usage: run_clang_tidy.py <repo-root> <build-dir>
"""

import concurrent.futures
import json
import os
import shutil
import subprocess
import sys

SKIP = 77


def main() -> int:
    if len(sys.argv) != 3:
        print("usage: run_clang_tidy.py <repo-root> <build-dir>")
        return 1
    root = os.path.abspath(sys.argv[1])
    build = os.path.abspath(sys.argv[2])

    tidy = shutil.which("clang-tidy")
    if tidy is None:
        print("clang-tidy not installed; skipping (exit 77)")
        return SKIP

    compdb = os.path.join(build, "compile_commands.json")
    if not os.path.exists(compdb):
        print(f"{compdb} missing — configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON")
        return 1
    with open(compdb, encoding="utf-8") as f:
        entries = json.load(f)

    prefixes = (os.path.join(root, "src") + os.sep,
                os.path.join(root, "tools") + os.sep)
    files = sorted(
        {
            e["file"]
            for e in entries
            if os.path.abspath(e["file"]).startswith(prefixes)
        }
    )
    if not files:
        print("no first-party translation units in the compile database")
        return 1

    def run_one(path: str) -> "tuple[str, int, str]":
        proc = subprocess.run(
            [tidy, "-p", build, "--quiet", path],
            capture_output=True,
            text=True,
            timeout=600,
        )
        return path, proc.returncode, proc.stdout + proc.stderr

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(
        max_workers=os.cpu_count() or 2
    ) as pool:
        for path, code, output in pool.map(run_one, files):
            rel = os.path.relpath(path, root)
            if code != 0:
                failures += 1
                print(f"== {rel} ==")
                print(output.strip())
            else:
                print(f"ok {rel}")

    if failures:
        print(f"clang-tidy: findings in {failures} of {len(files)} files")
        return 1
    print(f"clang-tidy: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
