#!/usr/bin/env python3
"""Enforce the qdt::obs metric naming scheme.

Every metric or span name registered from C++ sources under src/ and
tools/ must match `qdt.<layer>.<component>.<metric>` — exactly four
dot-separated segments of [a-z0-9_]+. The registry itself does not
validate names (hot-path cost), so this script is wired up as a ctest.

Usage: check_metrics_names.py [repo_root]
Exit code 0 when all names conform, 1 with a list of offenders otherwise.
"""

import re
import sys
from pathlib import Path

# obs::counter("..."), obs::gauge("..."), obs::histogram("...", ...),
# obs::Span("..."), obs::ScopedTimer takes a Histogram& so it needs no rule.
REGISTRATION = re.compile(
    r'obs::(?:counter|gauge|histogram|Span)\s*\(\s*"([^"]*)"'
)
VALID_NAME = re.compile(r"^qdt\.[a-z0-9_]+\.[a-z0-9_]+\.[a-z0-9_]+$")
SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".h"}


def scan(root: Path) -> list[tuple[Path, int, str]]:
    offenders = []
    for subdir in ("src", "tools"):
        base = root / subdir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES:
                continue
            text = path.read_text(encoding="utf-8", errors="replace")
            for match in REGISTRATION.finditer(text):
                name = match.group(1)
                if not VALID_NAME.match(name):
                    line = text.count("\n", 0, match.start()) + 1
                    offenders.append((path.relative_to(root), line, name))
    return offenders


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent.parent
    offenders = scan(root)
    if offenders:
        print("metric names must match qdt.<layer>.<component>.<metric> "
              "([a-z0-9_] segments):", file=sys.stderr)
        for path, line, name in offenders:
            print(f"  {path}:{line}: {name!r}", file=sys.stderr)
        return 1
    print("all qdt::obs metric names conform")
    return 0


if __name__ == "__main__":
    sys.exit(main())
