#!/usr/bin/env python3
"""Enforce the qdt::obs metric naming scheme and README catalogue coverage.

Two checks, both wired up as one ctest:

1. Every metric or span name registered from C++ sources under src/ and
   tools/ must match `qdt.<layer>.<component>.<metric>` — exactly four
   dot-separated segments of [a-z0-9_]+. The registry itself does not
   validate names (hot-path cost).

2. Every registered name must appear in README.md's catalogue table, so
   the table stays exhaustive as metrics are added. Table rows may list
   full names, comma lists, or `.suffix` shorthand that replaces the
   trailing segments of the last full name on the same line
   (`qdt.dd.unique_table.hits` / `.misses`).

3. The REQUIRED set below must actually be registered in code. These are
   the serving-health metrics external dashboards key on; renaming or
   dropping one is a breaking change and must fail CI, not be discovered
   by an operator staring at a flatlined graph.

Usage: check_metrics_names.py [repo_root]
Exit code 0 when all names conform and are documented, 1 otherwise.
"""

import re
import sys
from pathlib import Path

# obs::counter("..."), obs::gauge("..."), obs::histogram("...", ...),
# obs::Span("..."), trace::Span("...").
# obs::ScopedTimer takes a Histogram& so it needs no rule.
REGISTRATION = re.compile(
    r'(?:obs|trace)::(?:counter|gauge|histogram|Span)\s*\(\s*"([^"]*)"'
)
VALID_NAME = re.compile(r"^qdt\.[a-z0-9_]+\.[a-z0-9_]+\.[a-z0-9_]+$")
SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".h"}

# Backticked tokens in README table rows: full names, `.suffix` shorthand,
# or `qdt.x.*` prefix wildcards.
DOC_TOKEN = re.compile(r"`([^`]+)`")

# Names that must exist in the registry (and therefore, via check 2, in the
# README catalogue): the qdt serve daemon's operational surface.
REQUIRED_METRICS = {
    "qdt.serve.request.admitted",
    "qdt.serve.request.shed",
    "qdt.serve.request.degraded",
    "qdt.serve.queue.depth",
    "qdt.serve.cache.hit",
    # DD memory governance: long-running deployments alert on GC health.
    "qdt.dd.gc.runs",
    "qdt.dd.gc.freed_nodes",
    "qdt.dd.gc.live_nodes",
    # Certified optimizer: a nonzero cert.rejected means the optimizer
    # emitted an unjustified rewrite — always a bug, always alert-worthy.
    "qdt.flow.cert.rejected",
    "qdt.flow.cert.checked",
    "qdt.flow.opt.removed_gates",
}


def scan(root: Path) -> tuple[list[tuple[Path, int, str]], set[str]]:
    """Return (naming offenders, all registered names)."""
    offenders = []
    registered = set()
    for subdir in ("src", "tools"):
        base = root / subdir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES:
                continue
            text = path.read_text(encoding="utf-8", errors="replace")
            for match in REGISTRATION.finditer(text):
                name = match.group(1)
                if VALID_NAME.match(name):
                    registered.add(name)
                else:
                    line = text.count("\n", 0, match.start()) + 1
                    offenders.append((path.relative_to(root), line, name))
    return offenders, registered


def documented_names(readme: Path) -> tuple[set[str], list[str]]:
    """Parse catalogue table rows into (full names, prefix wildcards)."""
    names: set[str] = set()
    wildcards: list[str] = []
    if not readme.is_file():
        return names, wildcards
    for line in readme.read_text(encoding="utf-8").splitlines():
        if not line.lstrip().startswith("|"):
            continue
        last_full = None
        for token in DOC_TOKEN.findall(line):
            token = token.strip().rstrip(",")
            if token.endswith(".*") and token.startswith("qdt."):
                wildcards.append(token[:-1])  # keep trailing dot
            elif token.startswith("qdt."):
                names.add(token)
                last_full = token
            elif token.startswith(".") and last_full is not None:
                # `.misses` after `qdt.dd.unique_table.hits`: replace as
                # many trailing segments of last_full as the suffix has.
                suffix_parts = token[1:].split(".")
                base_parts = last_full.split(".")
                if len(suffix_parts) < len(base_parts):
                    expanded = ".".join(
                        base_parts[: len(base_parts) - len(suffix_parts)]
                        + suffix_parts
                    )
                    names.add(expanded)
    return names, wildcards


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent.parent
    offenders, registered = scan(root)
    failed = False
    if offenders:
        print("metric names must match qdt.<layer>.<component>.<metric> "
              "([a-z0-9_] segments):", file=sys.stderr)
        for path, line, name in offenders:
            print(f"  {path}:{line}: {name!r}", file=sys.stderr)
        failed = True

    names, wildcards = documented_names(root / "README.md")
    undocumented = sorted(
        name
        for name in registered
        if name not in names
        and not any(name.startswith(prefix) for prefix in wildcards)
    )
    if undocumented:
        print("metric names registered in code but missing from the "
              "README.md catalogue table:", file=sys.stderr)
        for name in undocumented:
            print(f"  {name}", file=sys.stderr)
        failed = True

    missing_required = sorted(REQUIRED_METRICS - registered)
    if missing_required:
        print("required serving metrics missing from the registry "
              "(dashboards depend on these exact names):", file=sys.stderr)
        for name in missing_required:
            print(f"  {name}", file=sys.stderr)
        failed = True

    if failed:
        return 1
    print(f"all {len(registered)} qdt metric names conform and are documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
