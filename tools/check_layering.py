#!/usr/bin/env python3
"""Enforce the src/ layering DAG via include statements.

The library is a stack: foundational layers (obs, guard, common) under the
IR, backends over the IR, the lint pass over the IR only, core over every
backend, and chaos over core. An include that points *up* the stack is a
layering violation — it either creates a dependency cycle outright or
quietly couples a backend to orchestration code it must not know about.

Allowed dependencies (a layer may always include itself):

  obs       -> (nothing else: the metrics layer is the foundation)
  guard     -> obs
  par       -> guard, obs    (the thread pool propagates budgets, so it
                              sits right above guard)
  trace     -> par, guard, obs  (attributed spans; installs par's opaque
                              context hooks, so it sits directly above the
                              pool — par reaches it only through function
                              pointers, never an include)
  common    -> guard, obs
  ir        -> common, guard, obs, par, trace
  arrays    -> ir + below
  stab      -> ir + below
  transpile -> ir + below
  dd        -> arrays, ir + below
  tn        -> arrays, ir + below
  zx        -> tn, transpile, arrays, ir + below
  flow      -> ir + below        (abstract interpretation + certified
                              rewriting: pure static analysis, no backend)
  lint      -> flow, ir + below  (static analysis must never simulate)
  core      -> every backend     (but not chaos, except the umbrella header)
  chaos     -> core + everything (it orchestrates the whole library)
  serve     -> core + everything (the daemon; sibling of chaos — the two
                              never include each other)

Nobody may include tools/. The single exemption: src/core/qdt.hpp is the
umbrella header and re-exports chaos for library users.

Usage: check_layering.py <repo-root>
"""

import os
import re
import sys

FOUNDATION = {"obs", "guard", "common", "par", "trace"}
IR_AND_BELOW = FOUNDATION | {"ir"}

ALLOWED = {
    "obs": set(),
    "guard": {"obs"},
    "par": {"guard", "obs"},
    "trace": {"par", "guard", "obs"},
    "common": {"guard", "obs"},
    "ir": FOUNDATION,
    "arrays": IR_AND_BELOW,
    "stab": IR_AND_BELOW,
    "transpile": IR_AND_BELOW,
    "dd": IR_AND_BELOW | {"arrays"},
    "tn": IR_AND_BELOW | {"arrays"},
    "zx": IR_AND_BELOW | {"arrays", "tn", "transpile"},
    "flow": IR_AND_BELOW,
    "lint": IR_AND_BELOW | {"flow"},
    "core": IR_AND_BELOW
    | {"arrays", "stab", "transpile", "dd", "tn", "zx", "flow", "lint"},
    "chaos": IR_AND_BELOW
    | {"arrays", "stab", "transpile", "dd", "tn", "zx", "flow", "lint",
       "core"},
    "serve": IR_AND_BELOW
    | {"arrays", "stab", "transpile", "dd", "tn", "zx", "flow", "lint",
       "core"},
}

# (relative file, included layer) pairs that are deliberately legal.
EXEMPT = {
    ("src/core/qdt.hpp", "chaos"),  # umbrella header re-exports everything
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([a-z_]+)/')


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: check_layering.py <repo-root>")
        return 1
    root = sys.argv[1]
    src = os.path.join(root, "src")
    violations = []
    layers_seen = set()

    for dirpath, _dirnames, filenames in os.walk(src):
        for filename in sorted(filenames):
            if not filename.endswith((".hpp", ".cpp")):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            layer = rel.split("/")[1]
            layers_seen.add(layer)
            if layer not in ALLOWED:
                violations.append(f"{rel}: unknown layer {layer!r} — add it "
                                  "to the DAG in tools/check_layering.py")
                continue
            allowed = ALLOWED[layer] | {layer}
            with open(path, encoding="utf-8") as f:
                for lineno, line in enumerate(f, 1):
                    m = INCLUDE_RE.match(line)
                    if not m:
                        continue
                    target = m.group(1)
                    if target == "tools":
                        violations.append(
                            f"{rel}:{lineno}: includes tools/ — the CLI is "
                            "not a library layer"
                        )
                        continue
                    if target not in ALLOWED:
                        continue  # system-ish or generated header
                    if target in allowed or (rel, target) in EXEMPT:
                        continue
                    violations.append(
                        f"{rel}:{lineno}: layer {layer!r} must not include "
                        f"{target!r} (allowed: "
                        f"{', '.join(sorted(allowed)) or 'only itself'})"
                    )

    missing = set(ALLOWED) - layers_seen
    if missing:
        violations.append(
            f"layers named in the DAG but absent from src/: "
            f"{', '.join(sorted(missing))} — keep the checker in sync"
        )

    if violations:
        print("layering violations:")
        for v in violations:
            print(f"  {v}")
        return 1
    print(f"layering OK across {len(layers_seen)} layers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
