#!/usr/bin/env python3
"""Drive the qdt binary through its failure modes and check exit codes.

Contract (see qdt_cli.cpp):
  0  success
  2  usage errors and bad input (missing file, malformed QASM)
  3  resource exhaustion (budget hit; forced here via QDT_FAULT so the
     check is deterministic and instant)
  4  internal errors

Structured failures must print `<code-name>: <message>` on stderr and must
never crash (no signal deaths, no uncaught exceptions).

`qdt lint` additionally exits 1 when warnings fired on an otherwise valid
circuit, mirroring compiler-style linters.

`qdt serve` exits 0 after a graceful drain (stdin EOF or SIGTERM) and 2 on
unusable flags (e.g. an unbindable socket path); every request line fed to
it must come back as exactly one JSON response line on stdout.

Usage: check_cli_exit_codes.py <path-to-qdt-binary>
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time


def run(binary, args, env_extra=None, stdin_text=None):
    env = dict(os.environ)
    env.pop("QDT_FAULT", None)
    if env_extra:
        env.update(env_extra)
    proc = subprocess.run(
        [binary] + args, capture_output=True, text=True, env=env, timeout=120,
        input=stdin_text,
    )
    return proc


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: check_cli_exit_codes.py <qdt-binary>")
        return 1
    binary = sys.argv[1]
    failures = []

    def expect(label, proc, code, stderr_contains=None):
        if proc.returncode != code:
            failures.append(
                f"{label}: expected exit {code}, got {proc.returncode} "
                f"(stderr: {proc.stderr.strip()!r})"
            )
        elif stderr_contains and stderr_contains not in proc.stderr:
            failures.append(
                f"{label}: stderr missing {stderr_contains!r}: "
                f"{proc.stderr.strip()!r}"
            )

    with tempfile.TemporaryDirectory() as tmp:
        good = os.path.join(tmp, "bell.qasm")
        with open(good, "w", encoding="utf-8") as f:
            f.write(
                "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n"
            )
        bad = os.path.join(tmp, "broken.qasm")
        with open(bad, "w", encoding="utf-8") as f:
            f.write("OPENQASM 2.0;\nqreg q[2];\nbadgate q[0];\n")

        expect("no args", run(binary, []), 2)
        expect(
            "missing file",
            run(binary, ["stats", os.path.join(tmp, "nope.qasm")]),
            2,
            stderr_contains="bad-input",
        )
        expect(
            "malformed qasm",
            run(binary, ["stats", bad]),
            2,
            stderr_contains="qasm:3",
        )
        expect("stats ok", run(binary, ["stats", good]), 0)
        expect("simulate ok", run(binary, ["simulate", good]), 0)
        expect(
            "forced exhaustion",
            run(
                binary,
                ["simulate", good],
                env_extra={"QDT_FAULT": "deadline:1"},
            ),
            3,
            stderr_contains="resource-exhausted",
        )
        expect(
            "robust survives exhaustion",
            run(
                binary,
                ["simulate", good, "--robust"],
                env_extra={"QDT_FAULT": "memory:1"},
            ),
            0,
        )
        expect("verify equivalent", run(binary, ["verify", good, good]), 0)

        # The stabilizer contract: the packed tableau runs far past 64
        # qubits, but sample_counts keys a 64-bit histogram, so sampling
        # wider registers must fail typed (exit 2, "unsupported"), never
        # with a UB shift. Running the same circuit without shots is fine.
        wide = os.path.join(tmp, "ghz70.qasm")
        with open(wide, "w", encoding="utf-8") as f:
            f.write("OPENQASM 2.0;\nqreg q[70];\nh q[0];\n")
            f.writelines(
                f"cx q[{i}], q[{i + 1}];\n" for i in range(69)
            )
        expect(
            "stab wide sampling rejected",
            run(binary, ["simulate", wide, "--backend", "stab", "--shots", "4"]),
            2,
            stderr_contains="unsupported",
        )
        expect(
            "stab wide run ok",
            run(binary, ["simulate", wide, "--backend", "stab", "--shots", "0"]),
            0,
        )
        exact64 = os.path.join(tmp, "ghz64.qasm")
        with open(exact64, "w", encoding="utf-8") as f:
            f.write("OPENQASM 2.0;\nqreg q[64];\nh q[0];\n")
            f.writelines(
                f"cx q[{i}], q[{i + 1}];\n" for i in range(63)
            )
        expect(
            "stab 64-qubit sampling ok",
            run(binary, ["simulate", exact64, "--backend", "stab", "--shots", "4"]),
            0,
        )

        # The lint contract: clean circuit -> 0, warnings -> 1, bad input
        # -> 2, and --json emits a machine-parseable report either way.
        dirty = os.path.join(tmp, "dirty.qasm")
        with open(dirty, "w", encoding="utf-8") as f:
            f.write("OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0], q[1];\n")
        expect("lint clean", run(binary, ["lint", good]), 0)
        expect("lint warnings", run(binary, ["lint", dirty]), 1)
        expect(
            "lint missing file",
            run(binary, ["lint", os.path.join(tmp, "nope.qasm")]),
            2,
            stderr_contains="bad-input",
        )
        expect("lint malformed qasm", run(binary, ["lint", bad]), 2)
        lint_json = run(binary, ["lint", dirty, "--json"])
        expect("lint json warnings", lint_json, 1)
        try:
            report = json.loads(lint_json.stdout)
            if report.get("warnings") != 1 or report.get("clean") is not False:
                failures.append(
                    f"lint json: unexpected report summary: "
                    f"{lint_json.stdout.strip()!r}"
                )
            if report["facts"].get("dead_qubits") != [2]:
                failures.append(
                    f"lint json: expected dead qubit 2: "
                    f"{report['facts'].get('dead_qubits')!r}"
                )
        except (json.JSONDecodeError, KeyError) as exc:
            failures.append(f"lint json: unparseable output ({exc})")

        # The opt contract: 0 on success (whether or not anything was
        # rewritten), 2 on bad input, and --json emits a machine-parseable
        # report whose counts are internally consistent.
        foldable = os.path.join(tmp, "foldable.qasm")
        with open(foldable, "w", encoding="utf-8") as f:
            f.write(
                "OPENQASM 2.0;\nqreg q[2];\nz q[0];\nh q[0];\ncx q[0], q[1];\n"
            )
        expect("opt ok", run(binary, ["opt", good]), 0)
        expect(
            "opt missing file",
            run(binary, ["opt", os.path.join(tmp, "nope.qasm")]),
            2,
            stderr_contains="bad-input",
        )
        expect("opt malformed qasm", run(binary, ["opt", bad]), 2)
        opt_json = run(binary, ["opt", foldable, "--json"])
        expect("opt json", opt_json, 0)
        try:
            report = json.loads(opt_json.stdout)
            if report.get("certified") is not True:
                failures.append(
                    f"opt json: expected certified report: "
                    f"{opt_json.stdout.strip()!r}"
                )
            if report.get("gates_after", 99) >= report.get("gates_before", 0):
                failures.append(
                    f"opt json: leading z on |0> should have been removed: "
                    f"{opt_json.stdout.strip()!r}"
                )
        except (json.JSONDecodeError, KeyError) as exc:
            failures.append(f"opt json: unparseable output ({exc})")

        # The serve contract: pipe mode answers every line with one JSON
        # response (typed errors included) and exits 0 after draining on
        # stdin EOF.
        bell = 'OPENQASM 2.0;\\nqreg q[2];\\nh q[0];\\ncx q[0],q[1];'
        requests = "\n".join(
            [
                '{"id":1,"op":"simulate","qasm":"%s","shots":16}' % bell,
                "not json at all",
                '{"id":3,"op":"status"}',
            ]
        )
        served = run(binary, ["serve", "--workers", "1"], stdin_text=requests)
        expect("serve pipe drain", served, 0)
        lines = [l for l in served.stdout.splitlines() if l.strip()]
        if len(lines) != 3:
            failures.append(
                f"serve: expected 3 response lines, got {len(lines)}: "
                f"{served.stdout!r}"
            )
        else:
            # Responses are not FIFO: inline rejections come back before
            # queued simulations, so match by echoed id.
            try:
                by_id = {}
                for line in lines:
                    resp = json.loads(line)
                    by_id[resp.get("id")] = resp
                if by_id.get(1, {}).get("ok") is not True:
                    failures.append(f"serve: request 1 not served: {lines!r}")
                garbage = by_id.get(None, {})
                if (
                    garbage.get("ok") is not False
                    or garbage["error"]["code"] != "bad-input"
                ):
                    failures.append(
                        f"serve: garbage line must get a typed bad-input "
                        f"response (id null), got {lines!r}"
                    )
                if by_id.get(3, {}).get("op") != "status":
                    failures.append(f"serve: status probe unanswered: {lines!r}")
            except (json.JSONDecodeError, KeyError) as exc:
                failures.append(f"serve: unparseable response ({exc})")
        expect(
            "serve unbindable socket",
            run(
                binary,
                ["serve", "--socket", os.path.join(tmp, "no", "dir", "x.sock")],
            ),
            2,
            stderr_contains="bad-input",
        )

        # SIGTERM must drain gracefully: exit 0, not a signal death.
        daemon = subprocess.Popen(
            [binary, "serve", "--workers", "1"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        time.sleep(0.5)
        daemon.send_signal(signal.SIGTERM)
        try:
            daemon.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            daemon.kill()
            failures.append("serve: SIGTERM did not drain within 60s")
        else:
            if daemon.returncode != 0:
                failures.append(
                    f"serve: SIGTERM drain expected exit 0, got "
                    f"{daemon.returncode}"
                )

    if failures:
        print("qdt CLI exit-code contract violations:")
        for f in failures:
            print(f"  {f}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
