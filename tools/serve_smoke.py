#!/usr/bin/env python3
"""End-to-end smoke for `qdt serve`: the robustness contract under one roof.

Drives a real daemon process over its stdio transport with ~50 mixed
requests — healthy hot circuits (plan-cache path), malformed protocol
lines, malformed QASM, injected mid-request faults, over-deadline budgets,
status probes — then SIGTERMs it and checks the whole contract:

  * every request line is answered with exactly one parseable JSON line,
    ids echoed, errors typed (code + message, retry_after_ms on sheds);
  * the daemon survives all of it: zero panics, exit code 0 after the
    SIGTERM graceful drain;
  * the observability artifacts flush on shutdown: the --metrics snapshot
    contains the qdt.serve.* counters with sane values, and the
    --trace-jsonl log contains qdt.serve.request.run spans;
  * a machine-readable summary is published as a `BENCH_serve.json ...`
    line on stdout (same convention as the bench binaries) for the CI
    artifact trend line.

Usage: serve_smoke.py <path-to-qdt-binary> [artifact-dir]
Exit 0 on success, 1 with a failure list otherwise.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

BELL = "OPENQASM 2.0;\\nqreg q[2];\\nh q[0];\\ncx q[0],q[1];"
GHZ6 = (
    "OPENQASM 2.0;\\nqreg q[6];\\nh q[0];\\ncx q[0],q[1];\\ncx q[1],q[2];"
    "\\ncx q[2],q[3];\\ncx q[3],q[4];\\ncx q[4],q[5];"
)


def build_requests():
    """~50 mixed requests; returns (lines, ids_expecting_echo)."""
    lines = []
    rid = 0

    def add(line):
        lines.append(line)

    for i in range(10):  # hot circuit: one miss then nine cache hits
        rid += 1
        add(
            '{"id":%d,"op":"simulate","qasm":"%s","shots":64,"seed":7,'
            '"tenant":"hot"}' % (rid, BELL)
        )
    for i in range(14):  # healthy heavier traffic, second tenant
        rid += 1
        add(
            '{"id":%d,"op":"simulate","qasm":"%s","shots":128,"seed":%d,'
            '"tenant":"batch"}' % (rid, GHZ6, i)
        )
    for i in range(8):  # malformed protocol + malformed QASM
        rid += 1
        if i % 2 == 0:
            add('{"id":%d,"op":' % rid)  # truncated JSON (id not echoed)
        else:
            add(
                '{"id":%d,"op":"simulate","qasm":"OPENQASM 2.0;\\nqreg q[&];"}'
                % rid
            )
    for i in range(8):  # injected mid-request faults, robust and not
        rid += 1
        robust = "true" if i % 2 == 0 else "false"
        add(
            '{"id":%d,"op":"simulate","qasm":"%s","shots":32,"robust":%s,'
            '"fault":"memory:1","tenant":"chaos"}' % (rid, BELL, robust)
        )
    for i in range(8):  # over-deadline budgets -> typed resource-exhausted
        rid += 1
        add(
            '{"id":%d,"op":"simulate","qasm":"%s","shots":64,"robust":false,'
            '"timeout_ms":0.0001}' % (rid, GHZ6)
        )
    for i in range(4):  # health probes interleaved with the hostile load
        rid += 1
        add('{"id":%d,"op":"status"}' % rid)
    return lines, rid


def run_soak(binary, env, failures):
    """1000-request single-worker endurance phase.

    Every request simulates (the per-request seed defeats the plan cache),
    so the worker's pooled dd::Package is exercised 1000 times. The pool
    resets the package between requests and GC bounds the live set inside
    each one, so ru_maxrss must plateau: the peak after the final request
    may exceed the peak after warm-up (~300 requests) by at most
    max(16 MiB, 10%). A leak of even a few KiB per request compounds to
    tens of MiB over the run and trips the assertion.

    Returns a dict of soak_* keys for the BENCH_serve.json line.
    """
    daemon = subprocess.Popen(
        # Queue limits sized so a full 100-request batch is admitted: the
        # soak measures steady-state memory, not admission control (the
        # main phase covers shedding).
        [
            binary, "serve", "--workers", "1",
            "--max-queue", "256", "--max-tenant-queue", "256",
        ],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    responses = []

    def reader():
        for line in daemon.stdout:
            line = line.strip()
            if line:
                responses.append(line)

    t = threading.Thread(target=reader, daemon=True)
    t.start()

    total = 1000
    batch = 100
    rid = 0
    rss_warm = None
    rss_final = None
    soak_ok = 0
    start = time.monotonic()
    try:
        for base in range(0, total, batch):
            for i in range(batch):
                rid += 1
                daemon.stdin.write(
                    '{"id":%d,"op":"simulate","qasm":"%s","shots":16,'
                    '"seed":%d,"tenant":"soak"}\n' % (rid, BELL, rid)
                )
            rid += 1
            daemon.stdin.write('{"id":%d,"op":"status"}\n' % rid)
            daemon.stdin.flush()
            deadline = time.monotonic() + 120
            while len(responses) < rid and time.monotonic() < deadline:
                time.sleep(0.02)
            if len(responses) < rid:
                failures.append(
                    f"soak: answered {len(responses)}/{rid} within 120s"
                )
                break
            status = None
            for line in responses[-(batch + 1):]:
                try:
                    r = json.loads(line)
                except json.JSONDecodeError:
                    failures.append(f"soak: unparseable response: {line!r}")
                    continue
                if r.get("op") == "status":
                    status = r
            if status is None:
                failures.append("soak: status probe went unanswered")
                break
            rss = status.get("rss_peak_mb")
            if rss is None:
                failures.append("soak: status response lacks rss_peak_mb")
                break
            if base + batch >= 300 and rss_warm is None:
                rss_warm = rss
            rss_final = rss
    except BrokenPipeError:
        failures.append("soak: daemon pipe closed mid-run")
    wall = time.monotonic() - start

    daemon.send_signal(signal.SIGTERM)
    try:
        daemon.stdin.close()
        daemon.wait(timeout=120)
        t.join(timeout=10)
    except (subprocess.TimeoutExpired, BrokenPipeError, OSError):
        daemon.kill()
        failures.append("soak: SIGTERM did not drain the daemon within 120s")
    if daemon.returncode != 0:
        failures.append(f"soak: daemon exit code {daemon.returncode}")

    for line in responses:
        try:
            r = json.loads(line)
        except json.JSONDecodeError:
            continue
        if r.get("ok") and r.get("op") != "status":
            soak_ok += 1
    if soak_ok < total:
        failures.append(f"soak: only {soak_ok}/{total} simulations succeeded")

    growth = None
    if rss_warm is not None and rss_final is not None:
        growth = rss_final - rss_warm
        allowed = max(16, 0.10 * rss_warm)
        if growth > allowed:
            failures.append(
                f"soak: rss_peak_mb grew {growth} MiB after warm-up "
                f"({rss_warm} -> {rss_final}, allowed {allowed:.0f}) — "
                "per-request memory is not being reclaimed"
            )
    else:
        failures.append("soak: never captured warm-up/final RSS readings")

    return {
        "soak_requests": total,
        "soak_ok": soak_ok,
        "soak_rss_warm_mb": rss_warm,
        "soak_rss_final_mb": rss_final,
        "soak_rss_growth_mb": growth,
        "soak_wall_seconds": round(wall, 4),
    }


def main() -> int:
    if len(sys.argv) < 2:
        print("usage: serve_smoke.py <qdt-binary> [artifact-dir]")
        return 1
    binary = sys.argv[1]
    artifact_dir = sys.argv[2] if len(sys.argv) > 2 else tempfile.mkdtemp(
        prefix="qdt_serve_smoke_"
    )
    os.makedirs(artifact_dir, exist_ok=True)
    metrics_path = os.path.join(artifact_dir, "serve_metrics.json")
    trace_path = os.path.join(artifact_dir, "serve_trace.jsonl")
    failures = []

    env = dict(os.environ)
    env.pop("QDT_FAULT", None)
    daemon = subprocess.Popen(
        [
            binary, "serve", "--workers", "2",
            "--metrics=" + metrics_path,
            "--trace-jsonl", trace_path,
        ],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )

    responses = []
    def reader():
        for line in daemon.stdout:
            line = line.strip()
            if line:
                responses.append(line)
    t = threading.Thread(target=reader, daemon=True)
    t.start()

    requests, _ = build_requests()
    start = time.monotonic()
    for line in requests:
        daemon.stdin.write(line + "\n")
    daemon.stdin.flush()

    deadline = time.monotonic() + 120
    while len(responses) < len(requests) and time.monotonic() < deadline:
        time.sleep(0.05)
    wall = time.monotonic() - start
    if len(responses) < len(requests):
        failures.append(
            f"answered {len(responses)}/{len(requests)} requests within 120s"
        )

    # Graceful SIGTERM drain; artifacts must flush on the way out.
    daemon.send_signal(signal.SIGTERM)
    try:
        daemon.stdin.close()
        daemon.wait(timeout=120)
        t.join(timeout=10)
    except subprocess.TimeoutExpired:
        daemon.kill()
        failures.append("SIGTERM did not drain the daemon within 120s")
    if daemon.returncode != 0:
        failures.append(
            f"daemon exit code {daemon.returncode} after SIGTERM (want 0)"
        )

    # ---- response contract ------------------------------------------------
    seen_ids = {}
    ok_count = typed_errors = cache_hits = degraded = sheds = 0
    final_status = None
    for line in responses:
        try:
            r = json.loads(line)
        except json.JSONDecodeError:
            failures.append(f"unparseable response line: {line!r}")
            continue
        if "ok" not in r:
            failures.append(f"response without ok field: {line!r}")
            continue
        rid = r.get("id")
        if rid is not None:
            seen_ids[rid] = seen_ids.get(rid, 0) + 1
        if r["ok"]:
            if r.get("op") == "status":
                final_status = r
            else:
                ok_count += 1
                if r.get("cache_hit"):
                    cache_hits += 1
                if r.get("degraded"):
                    degraded += 1
        else:
            err = r.get("error", {})
            if not err.get("code") or not err.get("message"):
                failures.append(f"untyped error response: {line!r}")
            typed_errors += 1
            if err.get("resource") == "queue":
                sheds += 1
                if "retry_after_ms" not in err:
                    failures.append(f"shed without retry hint: {line!r}")
    for rid, n in seen_ids.items():
        if n != 1:
            failures.append(f"request id {rid} answered {n} times")
    if ok_count == 0:
        failures.append("no successful simulations in the mix")
    if typed_errors == 0:
        failures.append("hostile requests produced no typed errors")
    if cache_hits < 5:
        failures.append(f"hot circuit produced only {cache_hits} cache hits")
    if degraded == 0:
        failures.append("robust fault requests never degraded")
    if final_status is not None and final_status.get("panics", 0) != 0:
        failures.append(f"daemon recorded panics: {final_status['panics']}")

    # ---- artifact checks --------------------------------------------------
    metrics = {}
    try:
        with open(metrics_path, encoding="utf-8") as f:
            metrics = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        failures.append(f"metrics artifact unusable: {exc}")
    counters = metrics.get("counters", {}) if metrics else {}
    for required in (
        "qdt.serve.request.admitted",
        "qdt.serve.request.shed",
        "qdt.serve.request.degraded",
        "qdt.serve.cache.hit",
    ):
        if required not in counters:
            failures.append(f"metrics artifact missing {required}")
    if counters.get("qdt.serve.request.admitted", 0) == 0:
        failures.append("qdt.serve.request.admitted stayed 0")
    if counters.get("qdt.serve.request.panics", 0) != 0:
        failures.append("qdt.serve.request.panics fired")

    spans = 0
    try:
        with open(trace_path, encoding="utf-8") as f:
            for line in f:
                if '"qdt.serve.request.run"' in line:
                    spans += 1
    except OSError as exc:
        failures.append(f"trace artifact unusable: {exc}")
    if spans == 0:
        failures.append("trace artifact has no qdt.serve.request.run spans")

    # ---- endurance soak: RSS must plateau ---------------------------------
    soak = run_soak(binary, env, failures)

    # ---- machine-readable summary ----------------------------------------
    bench = {
        "name": "serve_smoke",
        "requests": len(requests),
        "answered": len(responses),
        "ok": ok_count,
        "typed_errors": typed_errors,
        "cache_hits": cache_hits,
        "degraded": degraded,
        "sheds": sheds,
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(len(responses) / wall, 2) if wall > 0 else 0,
        "admitted": counters.get("qdt.serve.request.admitted", 0),
        "completed": counters.get("qdt.serve.request.completed", 0),
    }
    bench.update(soak)
    print("BENCH_serve.json " + json.dumps(bench))

    if failures:
        print("serve smoke failures:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(
        f"serve smoke OK: {len(responses)} answered "
        f"({ok_count} ok, {typed_errors} typed errors, {cache_hits} cache "
        f"hits, {degraded} degraded) in {wall:.2f}s; soak "
        f"{soak['soak_ok']}/{soak['soak_requests']} ok, rss "
        f"{soak['soak_rss_warm_mb']} -> {soak['soak_rss_final_mb']} MiB"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
